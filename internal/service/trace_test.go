package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"galsim/internal/campaign"
	"galsim/internal/telemetry"
	"galsim/internal/timeline"
)

func doHeaders(t *testing.T, method, url, body string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestSweepEchoesRequestAndTraceIDs: the sweep listing and per-sweep
// progress must echo the request ID and trace ID of the submitting request
// so clients can correlate a sweep with their own logs and traces.
func TestSweepEchoesRequestAndTraceIDs(t *testing.T) {
	_, ts := newTestServer(t)
	traceID := timeline.NewTraceID()
	parent := timeline.NewSpanID()
	resp, body := doHeaders(t, "POST", ts.URL+"/sweep",
		`{"benchmarks":["gcc"],"machines":["base"],"instructions":2000}`,
		map[string]string{
			"X-Request-Id":              "req-echo-1",
			telemetry.TraceParentHeader: timeline.FormatTraceParent(traceID, parent),
		})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}

	resp, body = get(t, ts.URL+"/sweeps/"+sr.ID+"/progress")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress: %d %s", resp.StatusCode, body)
	}
	var st sweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.RequestID != "req-echo-1" {
		t.Errorf("progress request_id = %q, want the submitted X-Request-Id", st.RequestID)
	}
	if st.TraceID != traceID {
		t.Errorf("progress trace_id = %q, want the inbound traceparent's %q", st.TraceID, traceID)
	}

	resp, body = get(t, ts.URL+"/sweeps")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweeps: %d %s", resp.StatusCode, body)
	}
	var listing SweepsResponse
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sw := range listing.Sweeps {
		if sw.ID == sr.ID {
			found = true
			if sw.RequestID != "req-echo-1" {
				t.Errorf("/sweeps listing request_id = %q, want req-echo-1", sw.RequestID)
			}
			if sw.TraceID != traceID {
				t.Errorf("/sweeps listing trace_id = %q, want %q", sw.TraceID, traceID)
			}
		}
	}
	if !found {
		t.Errorf("/sweeps listing does not contain sweep %s", sr.ID)
	}
}

// TestRunTimelineQuery: ?timeline=1 on /run attaches a tracer and returns
// the trace-event JSON inline; the repeated (cached) run omits it, since a
// memoized result has no execution to trace.
func TestRunTimelineQuery(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"benchmark":"gcc","machine":"gals","instructions":2000}`

	resp, raw := post(t, ts.URL+"/run?timeline=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run?timeline=1: %d %s", resp.StatusCode, raw)
	}
	var rr RunResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Timeline) == 0 {
		t.Fatal("first traced run returned no timeline")
	}
	if err := timeline.Validate(rr.Timeline); err != nil {
		t.Fatalf("inline timeline is malformed: %v", err)
	}

	resp, raw = post(t, ts.URL+"/run?timeline=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat run: %d %s", resp.StatusCode, raw)
	}
	var second RunResponse
	if err := json.Unmarshal(raw, &second); err != nil {
		t.Fatal(err)
	}
	if len(second.Timeline) != 0 {
		t.Error("cache-hit run returned a timeline; a memoized result has no execution to trace")
	}

	// An untraced run never pays for a recorder.
	resp, raw = post(t, ts.URL+"/run", `{"benchmark":"swim","instructions":2000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain run: %d %s", resp.StatusCode, raw)
	}
	if strings.Contains(string(raw), `"timeline"`) {
		t.Error("plain /run response contains a timeline field")
	}

	resp, raw = post(t, ts.URL+"/run?timeline=bogus", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("?timeline=bogus: %d %s, want 400", resp.StatusCode, raw)
	}
}

// TestSweepTraceEndpoint covers GET /sweeps/{id}/trace: 404s for unknown
// sweeps and untraced deployments, and a Perfetto-loadable trace when the
// span collector holds the sweep's spans.
func TestSweepTraceEndpoint(t *testing.T) {
	srv := New(campaign.NewEngine(0))
	spans := timeline.NewSpanCollector(0)
	srv.Spans = spans
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, _ := get(t, ts.URL+"/sweeps/nope/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep trace: %d, want 404", resp.StatusCode)
	}

	traceID := timeline.NewTraceID()
	resp, body := doHeaders(t, "POST", ts.URL+"/sweep",
		`{"benchmarks":["gcc"],"machines":["base"],"instructions":2000}`,
		map[string]string{telemetry.TraceParentHeader: timeline.FormatTraceParent(traceID, timeline.NewSpanID())})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}

	// The local engine records no spans — only a fleet coordinator does —
	// so the endpoint reports there is nothing to serve yet.
	resp, _ = get(t, ts.URL+"/sweeps/"+sr.ID+"/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace with empty collector: %d, want 404", resp.StatusCode)
	}

	// Simulate a coordinator having recorded the campaign.
	root := timeline.NewSpanID()
	spans.Add(
		timeline.Span{TraceID: traceID, SpanID: root, Name: "campaign", Service: "coordinator",
			StartUnixNs: 1_000, EndUnixNs: 50_000},
		timeline.Span{TraceID: traceID, SpanID: timeline.NewSpanID(), ParentID: root,
			Name: "execute", Service: "worker w1", StartUnixNs: 2_000, EndUnixNs: 40_000},
	)
	resp, body = get(t, ts.URL+"/sweeps/"+sr.ID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("trace Content-Type = %q", ct)
	}
	if err := timeline.Validate(body); err != nil {
		t.Fatalf("sweep trace is malformed: %v\n%s", err, body)
	}
	for _, want := range []string{"campaign", "worker w1", "coordinator"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("sweep trace missing %q", want)
		}
	}

	// A server with no collector at all 404s rather than pretending.
	bare, tsBare := newTestServer(t)
	_ = bare
	resp, body = post(t, tsBare.URL+"/sweep", `{"benchmarks":["gcc"],"machines":["base"],"instructions":2000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bare sweep: %d %s", resp.StatusCode, body)
	}
	var bsr SweepResponse
	if err := json.Unmarshal(body, &bsr); err != nil {
		t.Fatal(err)
	}
	resp, _ = get(t, tsBare.URL+"/sweeps/"+bsr.ID+"/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace without a collector: %d, want 404", resp.StatusCode)
	}
}
