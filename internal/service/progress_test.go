package service

import (
	"context"
	"fmt"
	"testing"

	"galsim/internal/campaign"
)

// TestSweepEvictionPrefersSettled is the regression for the tracker evicting
// still-running sweeps: with more concurrent sweeps than the table holds,
// settled entries must go first, so a client polling a live sweep's progress
// never gets 404 just because later sweeps arrived.
func TestSweepEvictionPrefersSettled(t *testing.T) {
	srv := New(campaign.NewEngine(1))
	ctx := context.Background()

	// Interleave: 150 sweeps that settle immediately, then 300 concurrent
	// (still-running) ones — 450 total against a 256-entry table.
	for i := 0; i < 150; i++ {
		st := srv.trackSweep(ctx, 1)
		srv.sweepDone(st, nil)
	}
	running := make([]*sweepStatus, 0, 300)
	for i := 0; i < 300; i++ {
		running = append(running, srv.trackSweep(ctx, 1))
	}

	srv.sweepsMu.Lock()
	defer srv.sweepsMu.Unlock()
	if got := len(srv.sweepIDs); got != maxTrackedSweeps {
		t.Fatalf("tracker holds %d sweeps, want the %d bound", got, maxTrackedSweeps)
	}
	if len(srv.sweepIDs) != len(srv.sweeps) {
		t.Fatalf("id list (%d) and map (%d) out of sync", len(srv.sweepIDs), len(srv.sweeps))
	}
	// All 150 settled sweeps must have been evicted before any running one.
	for _, id := range srv.sweepIDs {
		if srv.sweeps[id].State != "running" {
			t.Fatalf("settled sweep %s survived while running sweeps were evicted", id)
		}
	}
	// The table overflows by 300-256=44 running sweeps: the oldest 44 running
	// ones are the only legitimate running victims.
	for _, st := range running[44:] {
		if _, ok := srv.sweeps[st.ID]; !ok {
			t.Errorf("running sweep %s evicted while older settled/running entries were eligible", st.ID)
		}
	}
}

// TestSweepEvictionAllRunningStaysBounded pins the fallback: when every
// tracked sweep is still running the table still cannot grow past its bound.
func TestSweepEvictionAllRunningStaysBounded(t *testing.T) {
	srv := New(campaign.NewEngine(1))
	ctx := context.Background()
	var all []*sweepStatus
	for i := 0; i < 300; i++ {
		all = append(all, srv.trackSweep(ctx, 1))
	}
	srv.sweepsMu.Lock()
	defer srv.sweepsMu.Unlock()
	if got := len(srv.sweepIDs); got != maxTrackedSweeps {
		t.Fatalf("tracker holds %d sweeps, want %d", got, maxTrackedSweeps)
	}
	// Oldest running sweeps were evicted; the newest survive in order.
	for i, st := range all[len(all)-maxTrackedSweeps:] {
		if want, got := st.ID, srv.sweepIDs[i]; want != got {
			t.Fatalf("sweepIDs[%d] = %s, want %s", i, got, want)
		}
	}
	// Settling an evicted sweep must stay harmless (the handle outlives the
	// table entry).
	srv.sweepsMu.Unlock()
	srv.sweepDone(all[0], fmt.Errorf("late failure"))
	srv.sweepsMu.Lock()
	if all[0].State != "failed" {
		t.Errorf("evicted sweep handle state = %s, want failed", all[0].State)
	}
}
