package service

import (
	"encoding/json"
	"net/http"
	"testing"

	"galsim/internal/workload"
)

func TestWorkloadsEndpointListsBuiltins(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/workloads")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var wr WorkloadsResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	if len(wr.Builtin) != len(workload.Names()) {
		t.Fatalf("listed %d builtins, want %d", len(wr.Builtin), len(workload.Names()))
	}
	byName := map[string]WorkloadInfo{}
	for _, w := range wr.Builtin {
		byName[w.Name] = w
	}
	gcc, ok := byName["gcc"]
	if !ok {
		t.Fatal("gcc missing from /workloads")
	}
	if gcc.Suite != "spec95int" || gcc.BranchFrac != 0.19 || gcc.CodeBytes != 96<<10 {
		t.Errorf("gcc profile = %+v", gcc)
	}
	if gcc.MemFrac != 0.24+0.13 {
		t.Errorf("gcc mem fraction = %v", gcc.MemFrac)
	}
	if len(wr.Custom) != 0 {
		t.Errorf("fresh server lists custom workloads: %v", wr.Custom)
	}
}

const phasedJSON = `{
  "name": "svc-phased",
  "phases": [
    {"benchmark": "ijpeg", "instructions": 3000},
    {"benchmark": "fpppp", "instructions": 3000}
  ]
}`

func TestUploadAndRunCustomWorkload(t *testing.T) {
	_, ts := newTestServer(t)

	resp, body := post(t, ts.URL+"/workloads", phasedJSON)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d, body %s", resp.StatusCode, body)
	}
	var up UploadResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up.Name != "svc-phased" || up.Phases != 2 {
		t.Errorf("upload response = %+v", up)
	}

	// Re-upload is idempotent (200, not 201).
	if resp, _ := post(t, ts.URL+"/workloads", phasedJSON); resp.StatusCode != http.StatusOK {
		t.Errorf("re-upload status = %d", resp.StatusCode)
	}

	// The uploaded name is now listed...
	_, body = get(t, ts.URL+"/workloads")
	var wr WorkloadsResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if len(wr.Custom) != 1 || wr.Custom[0].Name != "svc-phased" {
		t.Errorf("custom listing = %+v", wr.Custom)
	}

	// ...and runnable by name through /run.
	resp, body = post(t, ts.URL+"/run", `{"benchmark":"svc-phased","machine":"gals","instructions":6000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d, body %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Summary.Benchmark != "svc-phased" || rr.Summary.Committed != 6000 {
		t.Errorf("run summary = %+v", rr.Summary)
	}
	if rr.Spec.Profile == nil || rr.Spec.Benchmark != "" {
		t.Errorf("run spec did not resolve the uploaded profile: %+v", rr.Spec)
	}
}

func TestRunInlineProfile(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/run",
		`{"machine":"gals","instructions":4000,"profile":{"name":"inline","phases":[{"benchmark":"adpcm","instructions":2000}]}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Summary.Benchmark != "inline" {
		t.Errorf("summary benchmark = %q", rr.Summary.Benchmark)
	}
}

func TestUploadValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := map[string]string{
		"garbage":            `{{{`,
		"unknown field":      `{"name":"x","phasez":[]}`,
		"builtin collision":  `{"name":"gcc","phases":[{"benchmark":"gcc","instructions":100}]}`,
		"no phases":          `{"name":"x","phases":[]}`,
		"unknown benchmark":  `{"name":"x","phases":[{"benchmark":"bogus","instructions":100}]}`,
		"zero instructions":  `{"name":"x","phases":[{"benchmark":"gcc","instructions":0}]}`,
		"both phase sources": `{"name":"x","phases":[{"benchmark":"gcc","profile":{"name":"y"},"instructions":5}]}`,
	}
	for name, body := range cases {
		if resp, b := post(t, ts.URL+"/workloads", body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, body %s", name, resp.StatusCode, b)
		}
	}
}

func TestRunRejectsTraceOverHTTP(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/run", `{"trace":{"path":"/etc/passwd"}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e["error"] == "" {
		t.Error("no error message for rejected trace spec")
	}
}
