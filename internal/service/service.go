// Package service implements the galsimd HTTP API: a long-running
// simulation server that executes single runs, declarative sweeps, and the
// paper's experiment drivers on a shared campaign engine, so concurrent
// clients asking for overlapping work are served from one content-addressed
// result cache.
//
// Endpoints:
//
//	POST /run                 one RunSpec -> summary
//	POST /sweep               one Sweep -> aggregated unit results
//	GET  /experiments/{fig}   regenerate a paper artifact (table1, 5..13,
//	                          phase, ablations, dvfs); ?format=json|text|csv
//	GET  /benchmarks          registered workload names
//	GET  /stats               cache hit/miss/entry counters
//	GET  /healthz             liveness probe
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"galsim/internal/campaign"
	"galsim/internal/experiments"
)

// maxBodyBytes bounds request bodies; specs and sweeps are small.
const maxBodyBytes = 1 << 20

// Server is the galsimd HTTP handler. Create with New.
type Server struct {
	engine *campaign.Engine
	mux    *http.ServeMux

	// MaxSweepUnits rejects sweeps expanding beyond this many units
	// (0 = unlimited). Protects a shared server from accidental
	// full-cross-product requests.
	MaxSweepUnits int
}

// New builds a server around the given engine (nil creates a fresh
// GOMAXPROCS-wide one).
func New(engine *campaign.Engine) *Server {
	if engine == nil {
		engine = campaign.NewEngine(0)
	}
	s := &Server{engine: engine, mux: http.NewServeMux(), MaxSweepUnits: 4096}
	s.mux.HandleFunc("POST /run", s.handleRun)
	s.mux.HandleFunc("POST /sweep", s.handleSweep)
	s.mux.HandleFunc("GET /experiments/{figure}", s.handleExperiment)
	s.mux.HandleFunc("GET /benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Engine returns the server's campaign engine.
func (s *Server) Engine() *campaign.Engine { return s.engine }

// ServeHTTP implements http.Handler. Panics escaping a handler (internal
// invariant violations in the simulator) become a 500 instead of killing
// the connection without a response.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return false
	}
	return true
}

// RunResponse is the POST /run payload.
type RunResponse struct {
	Key     string           `json:"key"`
	Spec    campaign.RunSpec `json:"spec"`
	Summary campaign.Summary `json:"summary"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var spec campaign.RunSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.engine.Run(r.Context(), spec)
	if err != nil {
		status := http.StatusInternalServerError
		if r.Context().Err() != nil {
			status = 499 // client closed request
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, RunResponse{
		Key:     spec.Key(),
		Spec:    spec.Canonical(),
		Summary: campaign.Summarize(spec, st),
	})
}

// SweepResponse is the POST /sweep payload.
type SweepResponse struct {
	Units   int                   `json:"units"`
	Cache   campaign.CacheStats   `json:"cache"`
	Results []campaign.UnitResult `json:"results"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var sweep campaign.Sweep
	if !decodeBody(w, r, &sweep) {
		return
	}
	// Size the expansion before materializing it: the cross product of a
	// few request-supplied axes can be astronomically larger than the body
	// that encodes them.
	if n := sweep.NumUnits(); s.MaxSweepUnits > 0 && n > s.MaxSweepUnits {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sweep expands to %d units, above the server limit of %d; split the request", n, s.MaxSweepUnits))
		return
	}
	if _, err := sweep.Units(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	results, err := s.engine.RunSweep(r.Context(), sweep)
	if err != nil {
		status := http.StatusInternalServerError
		if r.Context().Err() != nil {
			status = 499 // client closed request
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, SweepResponse{
		Units:   len(results),
		Cache:   s.engine.Stats(),
		Results: results,
	})
}

func (s *Server) experimentConfig(r *http.Request) (experiments.Config, error) {
	cfg := experiments.DefaultConfig()
	cfg.Engine = s.engine
	// A disconnecting client frees its worker slots instead of simulating
	// to completion; the resulting panic lands in the recover middleware.
	cfg.Ctx = r.Context()
	q := r.URL.Query()
	if v := q.Get("n"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil || n == 0 {
			return cfg, fmt.Errorf("bad n=%q (want a positive instruction count)", v)
		}
		cfg.Instructions = n
	}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return cfg, fmt.Errorf("bad seed=%q: %v", v, err)
		}
		cfg.WorkloadSeed = seed
	}
	if v := q.Get("benchmarks"); v != "" {
		cfg.Benchmarks = strings.Split(v, ",")
	}
	// Reject unknown benchmark names here: past this point the experiment
	// drivers treat failures as internal invariants.
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	figure := r.PathValue("figure")
	cfg, err := s.experimentConfig(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tables, err := experiments.Regenerate(cfg, figure)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, tables)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, t := range tables {
			t.Render(w)
		}
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		for _, t := range tables {
			if err := t.WriteCSV(w); err != nil {
				return
			}
		}
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (want json, text or csv)", format))
	}
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"benchmarks": campaign.Benchmarks()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
