// Package service implements the galsimd HTTP API: a long-running
// simulation server that executes single runs, declarative sweeps, and the
// paper's experiment drivers on a shared campaign engine, so concurrent
// clients asking for overlapping work are served from one content-addressed
// result cache.
//
// Endpoints:
//
//	POST /run                 one RunSpec -> summary (built-in benchmark,
//	                          inline custom profile, or uploaded profile name);
//	                          ?timeline=1 embeds a Perfetto-loadable event
//	                          timeline of the simulation
//	GET  /sweeps/{id}/trace   one sweep's distributed trace as Chrome
//	                          trace-event JSON (fleet front ends only)
//	POST /sweep               one Sweep -> aggregated unit results
//	GET  /experiments/{fig}   regenerate a paper artifact (table1, 5..13,
//	                          phase, ablations, dvfs); ?format=json|text|csv
//	GET  /benchmarks          registered workload names
//	GET  /workloads           benchmark profiles (mix fractions, footprints)
//	                          plus uploaded custom profiles
//	POST /workloads           upload a custom (possibly phased) profile;
//	                          later /run requests may reference it by name
//	GET  /machines            built-in machine specs (base, gals) plus
//	                          uploaded custom machines, with content digests
//	POST /machines            upload a machine spec (a clock-domain
//	                          topology); later /run and /sweep requests may
//	                          reference it by name
//	GET  /sweeps              recent sweeps with their progress snapshots
//	GET  /sweeps/{id}/progress  one sweep's live progress (units completed/
//	                          failed, cache hits)
//	GET  /stats               cache hit/miss/entry counters
//	GET  /metrics             Prometheus text exposition (HTTP request
//	                          counters and latencies, cache and registry
//	                          gauges; plus worker metrics when galsimd joins
//	                          a fleet)
//	GET  /healthz             liveness probe
//
// Every request is wrapped in structured access logging (log/slog) carrying
// a request ID: adopted from the X-Request-Id header when present, generated
// otherwise, and echoed back on the response.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"galsim/internal/campaign"
	"galsim/internal/experiments"
	"galsim/internal/httpjson"
	"galsim/internal/machine"
	"galsim/internal/pipeline"
	"galsim/internal/telemetry"
	"galsim/internal/timeline"
	"galsim/internal/workload"
)

// maxBodyBytes bounds request bodies; specs and sweeps are small.
const maxBodyBytes = 1 << 20

// maxCustomWorkloads and maxCustomWorkloadBytes bound the uploaded-profile
// registry in entries and in total stored bytes (specs are kept for the
// server's lifetime and uploads are unauthenticated, so both axes need a
// ceiling — 1024 one-MiB specs would otherwise pin a gigabyte of heap).
// The machine registry is bounded the same way.
const (
	maxCustomWorkloads     = 1024
	maxCustomWorkloadBytes = 16 << 20
	maxCustomMachines      = 1024
	maxCustomMachineBytes  = 16 << 20
)

// AdmissionGate is what the server needs from an admission controller:
// authenticate-and-rate-limit one request, and charge/return queued-unit
// quota. Rejections are answered by the gate itself (401, or 429 with a
// Retry-After hint). Implemented by *admission.Controller; an interface
// here keeps the service free of the admission package.
type AdmissionGate interface {
	Admit(w http.ResponseWriter, r *http.Request) (tenant string, ok bool)
	AcquireUnits(w http.ResponseWriter, tenant string, n int) bool
	ReleaseUnits(tenant string, n int)
}

// customEntry is one uploaded profile plus its accounted size.
type customEntry struct {
	spec workload.ProfileSpec
	size int
}

// machineEntry is one uploaded machine spec plus its accounted size.
type machineEntry struct {
	spec machine.Spec
	size int
}

// Server is the galsimd HTTP handler. Create with New.
type Server struct {
	engine *campaign.Engine
	mux    *http.ServeMux

	// Backend, when set, executes /run and /sweep batches instead of the
	// local engine — e.g. a cluster coordinator fanning the units out over
	// a worker fleet (see internal/cluster and cmd/galsim-fleet). The
	// engine keeps serving /experiments and the per-process /stats. Set
	// before the server starts handling requests.
	Backend campaign.Backend

	// MaxSweepUnits rejects sweeps expanding beyond this many units
	// (0 = unlimited). Protects a shared server from accidental
	// full-cross-product requests.
	MaxSweepUnits int

	// Admission, when set, gates POST /run and POST /sweep behind
	// per-tenant API keys, rate limits, and queued-unit quotas (see
	// internal/admission). nil leaves the API open, the pre-multi-tenant
	// behavior. Set before the server starts handling requests.
	Admission AdmissionGate

	// Spans, when set, backs GET /sweeps/{id}/trace: the collector the
	// fleet coordinator records campaign/lease spans into and folds worker
	// spans back into (cmd/galsim-fleet shares one collector between both).
	// Set before the server starts handling requests.
	Spans *timeline.SpanCollector

	// Log receives the server's structured access logs; nil uses
	// slog.Default(). Set before the server starts handling requests.
	Log *slog.Logger

	// metrics holds the server's Prometheus registry; the instrumented
	// handler is built on first request so Log can be set after New.
	metrics  *telemetry.Registry
	initOnce sync.Once
	handler  http.Handler

	// sweeps tracks recent /sweep requests for the progress API.
	sweepsMu  sync.Mutex
	sweeps    map[string]*sweepStatus
	sweepIDs  []string // insertion order, for bounded eviction
	sweepNext int

	// custom is the uploaded-profile registry: name -> validated spec.
	customMu    sync.RWMutex
	custom      map[string]customEntry
	customBytes int // total accounted size of all entries

	// machines is the uploaded-machine registry: name -> validated spec.
	machinesMu    sync.RWMutex
	machines      map[string]machineEntry
	machinesBytes int // total accounted size of all entries
}

// New builds a server around the given engine (nil creates a fresh
// GOMAXPROCS-wide one).
func New(engine *campaign.Engine) *Server {
	if engine == nil {
		engine = campaign.NewEngine(0)
	}
	s := &Server{engine: engine, mux: http.NewServeMux(), MaxSweepUnits: 4096,
		metrics: telemetry.NewRegistry(), sweeps: map[string]*sweepStatus{},
		custom: map[string]customEntry{}, machines: map[string]machineEntry{}}
	s.mux.HandleFunc("POST /run", s.handleRun)
	s.mux.HandleFunc("POST /sweep", s.handleSweep)
	s.mux.HandleFunc("GET /sweeps", s.handleSweeps)
	s.mux.HandleFunc("GET /sweeps/{id}/progress", s.handleSweepProgress)
	s.mux.HandleFunc("GET /sweeps/{id}/trace", s.handleSweepTrace)
	s.mux.HandleFunc("GET /experiments/{figure}", s.handleExperiment)
	s.mux.HandleFunc("GET /benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /workloads", s.handleWorkloads)
	s.mux.HandleFunc("POST /workloads", s.handleUploadWorkload)
	s.mux.HandleFunc("GET /machines", s.handleMachines)
	s.mux.HandleFunc("POST /machines", s.handleUploadMachine)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.Handle("GET /metrics", s.metrics.Handler())
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.registerGauges()
	return s
}

// registerGauges exposes the engine's cache counters and the upload-registry
// sizes as gauges sampled at scrape time — no counters to keep in sync with
// the underlying state.
func (s *Server) registerGauges() {
	s.metrics.GaugeFunc("galsim_service_cache_hits",
		"Runs served from the engine's result cache.",
		func() float64 { return float64(s.engine.Stats().Hits) })
	s.metrics.GaugeFunc("galsim_service_cache_misses",
		"Runs actually simulated by the engine.",
		func() float64 { return float64(s.engine.Stats().Misses) })
	s.metrics.GaugeFunc("galsim_service_cache_entries",
		"Completed runs currently held in the result cache.",
		func() float64 { return float64(s.engine.Stats().Entries) })
	s.metrics.GaugeFunc("galsim_service_workloads",
		"Uploaded custom workload profiles currently registered.",
		func() float64 {
			s.customMu.RLock()
			defer s.customMu.RUnlock()
			return float64(len(s.custom))
		})
	s.metrics.GaugeFunc("galsim_service_machines",
		"Uploaded custom machine specs currently registered.",
		func() float64 {
			s.machinesMu.RLock()
			defer s.machinesMu.RUnlock()
			return float64(len(s.machines))
		})
}

// Engine returns the server's campaign engine.
func (s *Server) Engine() *campaign.Engine { return s.engine }

// Metrics returns the server's Prometheus registry — the one /metrics
// serves. galsimd registers its fleet-worker metrics here, and
// cmd/galsim-fleet hands it to the coordinator so one scrape page covers
// service and fleet.
func (s *Server) Metrics() *telemetry.Registry { return s.metrics }

// backend returns the execution backend for runs and sweeps: the local
// engine unless a distributed one was installed.
func (s *Server) backend() campaign.Backend {
	if s.Backend != nil {
		return s.Backend
	}
	return s.engine
}

// ServeHTTP implements http.Handler. The full middleware stack is
// instrumentation (request ID, metrics, access log) around panic recovery
// around the mux — so a panicking handler still produces a 500 that is
// counted, logged and answered instead of killing the connection.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.initOnce.Do(func() {
		log := s.Log
		if log == nil {
			log = slog.Default()
		}
		s.handler = telemetry.Instrument("galsim_service", s.metrics, log,
			http.HandlerFunc(s.serveRecovered))
	})
	s.handler.ServeHTTP(w, r)
}

// serveRecovered converts panics escaping a handler (internal invariant
// violations in the simulator) into a 500 response.
func (s *Server) serveRecovered(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) { httpjson.Write(w, status, v) }

func writeError(w http.ResponseWriter, status int, err error) { httpjson.Error(w, status, err) }

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	return httpjson.Decode(w, r, v, maxBodyBytes)
}

// RunResponse is the POST /run payload. Samples is present only when the
// spec enabled interval sampling (sample_interval > 0); Timeline only for
// ?timeline=1 requests that actually simulated (a cache hit has no events
// to replay) — it is a complete Chrome trace-event JSON document, ready to
// save and open at https://ui.perfetto.dev.
type RunResponse struct {
	Key      string            `json:"key"`
	Spec     campaign.RunSpec  `json:"spec"`
	Summary  campaign.Summary  `json:"summary"`
	Samples  []pipeline.Sample `json:"samples,omitempty"`
	Timeline json.RawMessage   `json:"timeline,omitempty"`
}

// resolveWorkload substitutes an uploaded profile when the spec's benchmark
// names one: the run then carries the full profile content, so its cache
// identity covers what the workload *is*, not what it is called.
func (s *Server) resolveWorkload(spec *campaign.RunSpec) {
	if spec.Benchmark == "" || spec.Profile != nil || spec.Trace != nil {
		return
	}
	s.customMu.RLock()
	ent, ok := s.custom[spec.Benchmark]
	s.customMu.RUnlock()
	if ok {
		spec.Benchmark = ""
		spec.Profile = &ent.spec
	}
}

// resolveMachine substitutes an uploaded machine when the spec's machine
// field names one: the run then carries the full topology content, so its
// cache identity (and the jobs a fleet coordinator ships to workers) covers
// what the machine *is*, not what it is called.
func (s *Server) resolveMachine(spec *campaign.RunSpec) {
	if spec.Machine == "" || spec.MachineSpec != nil {
		return
	}
	if _, err := machine.ByName(spec.Machine); err == nil {
		return // built-ins resolve everywhere; never shadow them
	}
	s.machinesMu.RLock()
	ent, ok := s.machines[spec.Machine]
	s.machinesMu.RUnlock()
	if ok {
		spec.Machine = ""
		spec.MachineSpec = &ent.spec
	}
}

// admit runs the request through the admission gate; without one every
// request is the anonymous tenant.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (string, bool) {
	if s.Admission == nil {
		return "", true
	}
	return s.Admission.Admit(w, r)
}

// writeBackendError maps a failed batch execution to its HTTP status: 429
// with a Retry-After hint when the distributed backend's bounded queue
// rejected the work, 499 when the client hung up, 500 otherwise.
func writeBackendError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, campaign.ErrBackendBusy):
		w.Header().Set("Retry-After", "5")
		httpjson.ErrorCode(w, http.StatusTooManyRequests, "backend_busy", err)
	case r.Context().Err() != nil:
		writeError(w, 499, err) // client closed request
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.admit(w, r)
	if !ok {
		return
	}
	var spec campaign.RunSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	if spec.Trace != nil {
		// A trace reference names a server-side file; honouring it would let
		// clients probe the server's filesystem. Traces are a local-tooling
		// feature (galsim-trace / the library API).
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("trace replay is not available over HTTP; use the galsim-trace CLI or the library API"))
		return
	}
	s.resolveWorkload(&spec)
	s.resolveMachine(&spec)
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wantTimeline := false
	if v := r.URL.Query().Get("timeline"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad timeline=%q (want a boolean)", v))
			return
		}
		wantTimeline = b
	}
	if wantTimeline && s.Backend != nil {
		// Distributed runs simulate on workers; their in-sim windows arrive
		// as spans via the coordinator, not as a local event timeline.
		writeError(w, http.StatusBadRequest, fmt.Errorf(
			"timeline=1 is not available on a fleet front end; use GET /sweeps/{id}/trace for distributed traces"))
		return
	}
	if s.Admission != nil {
		if !s.Admission.AcquireUnits(w, tenant, 1) {
			return
		}
		defer s.Admission.ReleaseUnits(tenant, 1)
	}
	var (
		st  pipeline.Stats
		err error
		rec *timeline.Recorder
	)
	if wantTimeline {
		rec = timeline.NewRecorder(timeline.Options{})
		var hit bool
		st, hit, err = s.engine.RunTimeline(r.Context(), spec, campaign.TimelineTap{Recorder: rec})
		if hit {
			rec = nil // served from cache: nothing was simulated, no events
		}
	} else {
		// A human is waiting on this response: on a priority-aware backend
		// (the fleet coordinator) the unit jumps ahead of queued bulk sweeps.
		st, err = s.runOne(campaign.WithPriority(r.Context(), campaign.PriorityInteractive), spec)
	}
	if err != nil {
		writeBackendError(w, r, err)
		return
	}
	resp := RunResponse{
		Key:     spec.Key(),
		Spec:    spec.Canonical(),
		Summary: campaign.Summarize(spec, st),
		Samples: st.Samples,
	}
	if rec != nil {
		resp.Timeline = rec.TraceJSON()
	}
	writeJSON(w, http.StatusOK, resp)
}

// runOne executes a single spec: through the engine's singleflight cache
// normally, or as a one-unit batch on the installed distributed backend
// (whose workers hold the caches).
func (s *Server) runOne(ctx context.Context, spec campaign.RunSpec) (pipeline.Stats, error) {
	if s.Backend == nil {
		return s.engine.Run(ctx, spec)
	}
	stats, err := s.Backend.RunAll(ctx, []campaign.RunSpec{spec})
	if err != nil {
		return pipeline.Stats{}, err
	}
	return stats[0], nil
}

// SweepResponse is the POST /sweep payload. ID names the sweep in the
// progress tracker: GET /sweeps/{id}/progress serves its terminal snapshot
// (and live snapshots while the sweep was still running).
type SweepResponse struct {
	ID      string                `json:"id"`
	Units   int                   `json:"units"`
	Cache   campaign.CacheStats   `json:"cache"`
	Results []campaign.UnitResult `json:"results"`
}

// resolveSweepMachines rewrites a sweep whose machine axis references
// uploaded machines: every name entry becomes a full spec (built-ins
// included, preserving axis order — RunSpec canonicalization collapses
// built-in-equal specs back to their names, so cache identities are
// untouched). A name that is neither a built-in nor uploaded is an error
// naming the offender, so a typo'd entry cannot shift blame onto a
// correctly registered machine.
func (s *Server) resolveSweepMachines(sweep *campaign.Sweep) error {
	needed := false
	for _, name := range sweep.Machines {
		if _, err := machine.ByName(name); err != nil {
			needed = true
		}
	}
	if !needed {
		return nil
	}
	s.machinesMu.RLock()
	defer s.machinesMu.RUnlock()
	var specs []machine.Spec
	for _, name := range sweep.Machines {
		if sp, err := machine.ByName(name); err == nil {
			specs = append(specs, sp)
		} else if ent, ok := s.machines[name]; ok {
			specs = append(specs, ent.spec)
		} else {
			uploaded := make([]string, 0, len(s.machines))
			for n := range s.machines {
				uploaded = append(uploaded, n)
			}
			sort.Strings(uploaded)
			return fmt.Errorf("unknown machine %q in sweep (built-in machines: %s; uploaded: %v)",
				name, strings.Join(machine.BuiltinNames(), ", "), uploaded)
		}
	}
	sweep.Machines = nil
	sweep.MachineSpecs = append(specs, sweep.MachineSpecs...)
	return nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.admit(w, r)
	if !ok {
		return
	}
	var sweep campaign.Sweep
	if !decodeBody(w, r, &sweep) {
		return
	}
	if err := s.resolveSweepMachines(&sweep); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Size the expansion before materializing it: the cross product of a
	// few request-supplied axes can be astronomically larger than the body
	// that encodes them.
	if n := sweep.NumUnits(); s.MaxSweepUnits > 0 && n > s.MaxSweepUnits {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sweep expands to %d units, above the server limit of %d; split the request", n, s.MaxSweepUnits))
		return
	}
	units, err := sweep.Units()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.Admission != nil {
		// The whole expansion counts against the tenant's queued-unit quota
		// for as long as the sweep runs.
		if !s.Admission.AcquireUnits(w, tenant, len(units)) {
			return
		}
		defer s.Admission.ReleaseUnits(tenant, len(units))
	}
	tracked := s.trackSweep(r.Context(), len(units))
	results, err := campaign.RunSweepProgress(r.Context(), s.backend(), sweep,
		func(p campaign.Progress) { s.sweepProgress(tracked, p) })
	s.sweepDone(tracked, err)
	if err != nil {
		writeBackendError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, SweepResponse{
		ID:      tracked.ID,
		Units:   len(results),
		Cache:   s.engine.Stats(),
		Results: results,
	})
}

func (s *Server) experimentConfig(r *http.Request) (experiments.Config, error) {
	cfg := experiments.DefaultConfig()
	cfg.Engine = s.engine
	// A disconnecting client frees its worker slots instead of simulating
	// to completion; the resulting panic lands in the recover middleware.
	cfg.Ctx = r.Context()
	q := r.URL.Query()
	if v := q.Get("n"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil || n == 0 {
			return cfg, fmt.Errorf("bad n=%q (want a positive instruction count)", v)
		}
		cfg.Instructions = n
	}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return cfg, fmt.Errorf("bad seed=%q: %v", v, err)
		}
		cfg.WorkloadSeed = seed
	}
	if v := q.Get("benchmarks"); v != "" {
		cfg.Benchmarks = strings.Split(v, ",")
	}
	// Reject unknown benchmark names here: past this point the experiment
	// drivers treat failures as internal invariants.
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	figure := r.PathValue("figure")
	cfg, err := s.experimentConfig(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tables, err := experiments.Regenerate(cfg, figure)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, tables)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, t := range tables {
			t.Render(w)
		}
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		for _, t := range tables {
			if err := t.WriteCSV(w); err != nil {
				return
			}
		}
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (want json, text or csv)", format))
	}
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"benchmarks": campaign.Benchmarks()})
}

// WorkloadInfo is one GET /workloads entry: a benchmark's statistical
// profile at the granularity the paper characterizes workloads by.
type WorkloadInfo struct {
	Name       string  `json:"name"`
	Suite      string  `json:"suite"`
	BranchFrac float64 `json:"branch_frac"`
	FPFrac     float64 `json:"fp_frac"`
	MemFrac    float64 `json:"mem_frac"`
	CodeBytes  int     `json:"code_bytes"`
	DataBytes  int     `json:"data_bytes"`
}

// WorkloadsResponse is the GET /workloads payload.
type WorkloadsResponse struct {
	Builtin []WorkloadInfo         `json:"builtin"`
	Custom  []workload.ProfileSpec `json:"custom"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	resp := WorkloadsResponse{Custom: []workload.ProfileSpec{}}
	for _, p := range workload.All() {
		resp.Builtin = append(resp.Builtin, WorkloadInfo{
			Name:       p.Name,
			Suite:      p.Suite,
			BranchFrac: p.Mix.Branch,
			FPFrac:     p.Mix.FPFrac(),
			MemFrac:    p.Mix.MemFrac(),
			CodeBytes:  p.CodeFootprint,
			DataBytes:  p.DataWorkingSet,
		})
	}
	s.customMu.RLock()
	for _, ent := range s.custom {
		resp.Custom = append(resp.Custom, ent.spec)
	}
	s.customMu.RUnlock()
	sort.Slice(resp.Custom, func(i, j int) bool { return resp.Custom[i].Name < resp.Custom[j].Name })
	writeJSON(w, http.StatusOK, resp)
}

// UploadResponse is the POST /workloads payload.
type UploadResponse struct {
	Name   string `json:"name"`
	Phases int    `json:"phases"`
}

func (s *Server) handleUploadWorkload(w http.ResponseWriter, r *http.Request) {
	var spec workload.ProfileSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	encoded, err := json.Marshal(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("encoding profile: %w", err))
		return
	}
	s.customMu.Lock()
	old, exists := s.custom[spec.Name]
	newTotal := s.customBytes - old.size + len(encoded)
	if (!exists && len(s.custom) >= maxCustomWorkloads) || newTotal > maxCustomWorkloadBytes {
		s.customMu.Unlock()
		writeError(w, http.StatusInsufficientStorage,
			fmt.Errorf("custom workload registry is full (%d entries / %d bytes max)",
				maxCustomWorkloads, maxCustomWorkloadBytes))
		return
	}
	s.custom[spec.Name] = customEntry{spec: spec, size: len(encoded)}
	s.customBytes = newTotal
	s.customMu.Unlock()
	status := http.StatusCreated
	if exists {
		status = http.StatusOK // idempotent re-upload / replacement
	}
	writeJSON(w, status, UploadResponse{Name: spec.Name, Phases: len(spec.Phases)})
}

// MachineInfo is one GET /machines entry: the canonical spec plus its
// content digest (the identity cache keys and trace provenance record) and
// a domain summary.
type MachineInfo struct {
	Name    string       `json:"name"`
	Digest  string       `json:"digest"`
	Domains []string     `json:"domains"`
	Dynamic bool         `json:"dynamic"` // has a dynamic-DVFS-capable domain
	Spec    machine.Spec `json:"spec"`
}

// MachinesResponse is the GET /machines payload.
type MachinesResponse struct {
	Builtin []MachineInfo `json:"builtin"`
	Custom  []MachineInfo `json:"custom"`
}

func machineInfo(sp machine.Spec) MachineInfo {
	c := sp.Canonical()
	return MachineInfo{
		Name:    c.Name,
		Digest:  c.Digest(),
		Domains: c.DomainNames(),
		Dynamic: c.DynamicCapable(),
		Spec:    c,
	}
}

func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	resp := MachinesResponse{Custom: []MachineInfo{}}
	for _, sp := range machine.Builtins() {
		resp.Builtin = append(resp.Builtin, machineInfo(sp))
	}
	s.machinesMu.RLock()
	for _, ent := range s.machines {
		resp.Custom = append(resp.Custom, machineInfo(ent.spec))
	}
	s.machinesMu.RUnlock()
	sort.Slice(resp.Custom, func(i, j int) bool { return resp.Custom[i].Name < resp.Custom[j].Name })
	writeJSON(w, http.StatusOK, resp)
}

// MachineUploadResponse is the POST /machines payload. The digest is stable
// across uploads of equal specs — the property fleet-wide cache dedup and
// replay provenance rest on.
type MachineUploadResponse struct {
	Name    string `json:"name"`
	Digest  string `json:"digest"`
	Domains int    `json:"domains"`
}

func (s *Server) handleUploadMachine(w http.ResponseWriter, r *http.Request) {
	var spec machine.Spec
	if !decodeBody(w, r, &spec) {
		return
	}
	exists, err := s.RegisterMachine(spec)
	if err != nil {
		status := http.StatusBadRequest
		if err == errMachineRegistryFull {
			status = http.StatusInsufficientStorage
		}
		writeError(w, status, err)
		return
	}
	status := http.StatusCreated
	if exists {
		status = http.StatusOK // idempotent re-upload / replacement
	}
	writeJSON(w, status, MachineUploadResponse{
		Name:    spec.Name,
		Digest:  spec.Digest(),
		Domains: len(spec.Domains),
	})
}

var errMachineRegistryFull = fmt.Errorf("custom machine registry is full (%d entries / %d bytes max)",
	maxCustomMachines, maxCustomMachineBytes)

// RegisterMachine validates and stores a machine spec in the server's
// registry, so /run and /sweep requests may reference it by name; replaced
// reports whether an entry of the same name existed. Used by the /machines
// upload handler and by front ends (galsim-fleet -machine) that pre-load
// machines at startup. Built-in names are reserved.
func (s *Server) RegisterMachine(spec machine.Spec) (replaced bool, err error) {
	if err := spec.Validate(); err != nil {
		return false, err
	}
	if _, err := machine.ByName(spec.Name); err == nil {
		return false, fmt.Errorf("machine name %q is reserved for the built-in machine", spec.Name)
	}
	encoded, err := json.Marshal(spec)
	if err != nil {
		return false, fmt.Errorf("encoding machine spec: %w", err)
	}
	s.machinesMu.Lock()
	defer s.machinesMu.Unlock()
	old, exists := s.machines[spec.Name]
	newTotal := s.machinesBytes - old.size + len(encoded)
	if (!exists && len(s.machines) >= maxCustomMachines) || newTotal > maxCustomMachineBytes {
		return false, errMachineRegistryFull
	}
	s.machines[spec.Name] = machineEntry{spec: spec, size: len(encoded)}
	s.machinesBytes = newTotal
	return exists, nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
