package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"galsim/internal/campaign"
	"galsim/internal/pipeline"
	"galsim/internal/report"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(campaign.NewEngine(0))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/run",
		`{"benchmark":"gcc","machine":"gals","instructions":8000,"slowdowns":{"fp":2}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Key == "" || rr.Summary.Committed != 8000 || rr.Summary.Benchmark != "gcc" {
		t.Errorf("response = %+v", rr)
	}
	if rr.Summary.EnergyJoules <= 0 || rr.Summary.IPC <= 0 {
		t.Errorf("metrics not populated: %+v", rr.Summary)
	}
}

func TestRunEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t)
	// The invalid-domain error must reach API users with the valid domain
	// list intact.
	resp, body := post(t, ts.URL+"/run",
		`{"benchmark":"gcc","machine":"gals","slowdowns":{"warp":2}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	for _, want := range []string{"warp", "fetch", "decode", "int", "fp", "mem"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("error body %s missing %q", body, want)
		}
	}
	if resp, body := post(t, ts.URL+"/run", `{"bench":"gcc"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted: %d %s", resp.StatusCode, body)
	}
}

func TestSweepEndpointCachesRepeatedSpecs(t *testing.T) {
	srv, ts := newTestServer(t)
	sweepBody := `{"benchmarks":["gcc","li"],"machines":["base","gals"],"instructions":5000}`

	resp, body := post(t, ts.URL+"/sweep", sweepBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var first SweepResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Units != 4 || len(first.Results) != 4 {
		t.Fatalf("first sweep: %d units, %d results", first.Units, len(first.Results))
	}
	misses := srv.Engine().Stats().Misses

	// Concurrent identical sweeps: all succeed, nothing is re-simulated.
	var wg sync.WaitGroup
	bodies := make([][]byte, 4)
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(sweepBody))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				bodies[i], _ = io.ReadAll(resp.Body)
			}
		}(i)
	}
	wg.Wait()
	for i, b := range bodies {
		if b == nil {
			t.Fatalf("concurrent sweep %d failed", i)
		}
		var repeat SweepResponse
		if err := json.Unmarshal(b, &repeat); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mustJSON(t, repeat.Results), mustJSON(t, first.Results)) {
			t.Errorf("concurrent sweep %d returned different results", i)
		}
		if repeat.Cache.Hits == 0 {
			t.Errorf("concurrent sweep %d reported no cache hits: %+v", i, repeat.Cache)
		}
	}
	if after := srv.Engine().Stats().Misses; after != misses {
		t.Errorf("repeated sweeps re-simulated units: misses %d -> %d", misses, after)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSweepUnitLimit(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.MaxSweepUnits = 3
	resp, body := post(t, ts.URL+"/sweep", `{"benchmarks":["gcc","li"],"machines":["base","gals"],"instructions":5000}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(body), "limit") {
		t.Errorf("body %s does not explain the limit", body)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	resp, body := get(t, ts.URL+"/experiments/table1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table1: status %d, body %s", resp.StatusCode, body)
	}
	var tables []*report.Table
	if err := json.Unmarshal(body, &tables); err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ID != "Table 1" || len(tables[0].Rows) != 5 {
		t.Errorf("table1 = %+v", tables)
	}

	resp, body = get(t, ts.URL+"/experiments/5?n=6000&benchmarks=gcc,fpppp")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fig5: status %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &tables); err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 3 { // 2 benchmarks + average
		t.Errorf("fig5 = %+v", tables[0])
	}

	// Text and CSV formats for the same figure are cache hits by now.
	resp, body = get(t, ts.URL+"/experiments/5?n=6000&benchmarks=gcc,fpppp&format=text")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "Figure 5") {
		t.Errorf("text format: status %d, body %s", resp.StatusCode, body)
	}
	resp, body = get(t, ts.URL+"/experiments/5?n=6000&benchmarks=gcc,fpppp&format=csv")
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "benchmark,") {
		t.Errorf("csv format: status %d, body %s", resp.StatusCode, body)
	}

	if resp, _ := get(t, ts.URL+"/experiments/99"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown figure: status %d, want 400", resp.StatusCode)
	}
	// Unknown benchmark names must come back as a 400, not kill the
	// request inside a driver.
	resp, body = get(t, ts.URL+"/experiments/5?n=6000&benchmarks=bogus")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "bogus") {
		t.Errorf("bogus benchmark: status %d, body %s", resp.StatusCode, body)
	}
	if resp, _ := get(t, ts.URL+"/experiments/5?n=6000&benchmarks=gcc,"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trailing comma: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/experiments/5?n=0"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("n=0: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/experiments/5?format=xml&n=6000&benchmarks=gcc,fpppp"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", resp.StatusCode)
	}
}

// countingBackend records the batches routed through it and delegates to
// an engine, standing in for a cluster coordinator.
type countingBackend struct {
	engine  *campaign.Engine
	batches [][]campaign.RunSpec
}

func (b *countingBackend) RunAll(ctx context.Context, specs []campaign.RunSpec) ([]pipeline.Stats, error) {
	b.batches = append(b.batches, specs)
	return b.engine.RunAll(ctx, specs)
}

// TestBackendThreading: with a Backend installed, /run and /sweep execute
// through it — not the server's own engine — and return the same payloads.
func TestBackendThreading(t *testing.T) {
	srv, ts := newTestServer(t)
	backend := &countingBackend{engine: campaign.NewEngine(2)}
	srv.Backend = backend

	resp, body := post(t, ts.URL+"/run", `{"benchmark":"gcc","instructions":5000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run via backend: %d %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Summary.Committed != 5000 {
		t.Errorf("run summary = %+v", rr.Summary)
	}
	resp, body = post(t, ts.URL+"/sweep", `{"benchmarks":["gcc","li"],"machines":["base"],"instructions":5000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep via backend: %d %s", resp.StatusCode, body)
	}
	if len(backend.batches) != 2 || len(backend.batches[0]) != 1 || len(backend.batches[1]) != 2 {
		t.Errorf("backend saw batches %v, want one 1-unit and one 2-unit", batchSizes(backend.batches))
	}
	if st := srv.Engine().Stats(); st.Misses != 0 {
		t.Errorf("server engine simulated %d units despite the backend: %+v", st.Misses, st)
	}
}

func batchSizes(batches [][]campaign.RunSpec) []int {
	sizes := make([]int, len(batches))
	for i, b := range batches {
		sizes[i] = len(b)
	}
	return sizes
}

func TestAuxEndpoints(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}
	resp, body = get(t, ts.URL+"/benchmarks")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "gcc") {
		t.Errorf("benchmarks: %d %s", resp.StatusCode, body)
	}
	post(t, ts.URL+"/run", fmt.Sprintf(`{"benchmark":%q,"instructions":5000}`, "li"))
	resp, body = get(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var st campaign.CacheStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats after one run = %+v", st)
	}
	if resp, _ := get(t, ts.URL+"/run"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: status %d, want 405", resp.StatusCode)
	}
	_ = srv
}
