package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"galsim/internal/campaign"
	"galsim/internal/machine"
)

const triMachineJSON = `{
  "name": "svc-tri",
  "domains": [
    {"name": "front"},
    {"name": "exec", "dvfs": "dynamic"},
    {"name": "memsys"}
  ],
  "assign": {
    "fetch": "front", "decode": "front",
    "int": "exec", "fp": "exec",
    "mem": "memsys"
  }
}`

func TestMachinesEndpointListsBuiltins(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/machines")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var mr MachinesResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Builtin) != len(machine.BuiltinNames()) {
		t.Fatalf("listed %d builtins, want %d", len(mr.Builtin), len(machine.BuiltinNames()))
	}
	if mr.Builtin[0].Name != "base" || mr.Builtin[0].Digest == "" || len(mr.Builtin[0].Domains) != 1 {
		t.Errorf("base entry = %+v", mr.Builtin[0])
	}
	if mr.Builtin[1].Name != "gals" || !mr.Builtin[1].Dynamic || len(mr.Builtin[1].Domains) != 5 {
		t.Errorf("gals entry = %+v", mr.Builtin[1])
	}
	if len(mr.Custom) != 0 {
		t.Errorf("fresh server lists custom machines: %v", mr.Custom)
	}
}

func TestUploadAndRunCustomMachine(t *testing.T) {
	_, ts := newTestServer(t)

	resp, body := post(t, ts.URL+"/machines", triMachineJSON)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d, body %s", resp.StatusCode, body)
	}
	var up MachineUploadResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up.Name != "svc-tri" || up.Domains != 3 || up.Digest == "" {
		t.Fatalf("upload response = %+v", up)
	}

	// Re-upload is idempotent and the digest is stable — the property cache
	// identities across uploads rest on.
	resp, body = post(t, ts.URL+"/machines", triMachineJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-upload status = %d, body %s", resp.StatusCode, body)
	}
	var up2 MachineUploadResponse
	if err := json.Unmarshal(body, &up2); err != nil {
		t.Fatal(err)
	}
	if up2.Digest != up.Digest {
		t.Fatalf("digest changed across uploads: %s vs %s", up.Digest, up2.Digest)
	}

	// A run may now reference the machine by name; the canonical spec in
	// the response carries the full topology (the fleet-portable identity).
	runReq := `{"benchmark":"gcc","machine":"svc-tri","instructions":4000,"slowdowns":{"exec":1.5}}`
	resp, body = post(t, ts.URL+"/run", runReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d, body %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Summary.Machine != "svc-tri" || rr.Summary.Committed != 4000 {
		t.Errorf("summary = %+v", rr.Summary)
	}
	if rr.Spec.MachineSpec == nil || rr.Spec.MachineSpec.Digest() != up.Digest {
		t.Errorf("canonical spec does not carry the uploaded topology: %+v", rr.Spec)
	}

	// Identical second run: served from the cache under the same key.
	resp, body = post(t, ts.URL+"/run", runReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second run status = %d, body %s", resp.StatusCode, body)
	}
	var rr2 RunResponse
	if err := json.Unmarshal(body, &rr2); err != nil {
		t.Fatal(err)
	}
	if rr2.Key != rr.Key {
		t.Errorf("cache key unstable across runs of an uploaded machine: %s vs %s", rr2.Key, rr.Key)
	}

	// GET /machines lists it.
	resp, body = get(t, ts.URL+"/machines")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	var mr MachinesResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Custom) != 1 || mr.Custom[0].Name != "svc-tri" || mr.Custom[0].Digest != up.Digest {
		t.Errorf("custom listing = %+v", mr.Custom)
	}
}

func TestSweepResolvesUploadedMachine(t *testing.T) {
	_, ts := newTestServer(t)
	if resp, body := post(t, ts.URL+"/machines", triMachineJSON); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d, body %s", resp.StatusCode, body)
	}
	req := mustJSON(t, campaign.Sweep{
		Benchmarks:   []string{"gcc"},
		Machines:     []string{"base", "svc-tri"},
		SlowdownGrid: []map[string]float64{nil, {"exec": 2}},
		Instructions: 3_000,
	})
	resp, body := post(t, ts.URL+"/sweep", string(req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d, body %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	// 1 benchmark x 2 machines x 2 grid points; axis order is preserved and
	// the exec slowdown collapses to full speed on the single-clock base.
	if sr.Units != 4 {
		t.Fatalf("units = %d, want 4", sr.Units)
	}
	if sr.Results[0].Summary.Machine != "base" || sr.Results[2].Summary.Machine != "svc-tri" {
		t.Errorf("machine axis order: %s, %s", sr.Results[0].Summary.Machine, sr.Results[2].Summary.Machine)
	}
	if sr.Results[0].Key != sr.Results[1].Key {
		t.Errorf("base units differ across exec-only grid points (keys %s vs %s)", sr.Results[0].Key, sr.Results[1].Key)
	}
	if sr.Results[2].Key == sr.Results[3].Key {
		t.Error("slowed tri unit shares a key with the full-speed one")
	}
	// The built-in axis entries keep their classic cache identity even
	// though resolution rewrote them as specs.
	want := campaign.RunSpec{Benchmark: "gcc", Machine: "base", Instructions: 3_000}.Key()
	if sr.Results[0].Key != want {
		t.Errorf("base unit key = %s, want the classic %s", sr.Results[0].Key, want)
	}
}

func TestSweepUnknownMachineBlamesTheTypo(t *testing.T) {
	_, ts := newTestServer(t)
	if resp, body := post(t, ts.URL+"/machines", triMachineJSON); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d, body %s", resp.StatusCode, body)
	}
	req := mustJSON(t, campaign.Sweep{
		Benchmarks:   []string{"gcc"},
		Machines:     []string{"svc-tri", "typo"},
		Instructions: 3_000,
	})
	resp, body := post(t, ts.URL+"/sweep", string(req))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`\"typo\"`)) && !bytes.Contains(body, []byte("typo")) {
		t.Errorf("error %s does not name the unknown machine", body)
	}
	if bytes.Contains(body, []byte(`unknown machine \"svc-tri\"`)) {
		t.Errorf("error %s blames the registered machine", body)
	}
}

func TestUploadMachineValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"reserved name", `{"name":"gals","domains":[{"name":"core"}],"assign":{"fetch":"core","decode":"core","int":"core","fp":"core","mem":"core"}}`},
		{"unassigned structure", `{"name":"x","domains":[{"name":"core"}],"assign":{"fetch":"core"}}`},
		{"dynamic front end", `{"name":"x","domains":[{"name":"a"},{"name":"b","dvfs":"dynamic"}],"assign":{"fetch":"b","decode":"a","int":"a","fp":"a","mem":"a"}}`},
	}
	for _, c := range cases {
		resp, body := post(t, ts.URL+"/machines", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, body %s", c.name, resp.StatusCode, body)
		}
	}
	// An unknown machine in /run names the built-ins.
	resp, body := post(t, ts.URL+"/run", `{"benchmark":"gcc","machine":"nope"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown machine run status = %d", resp.StatusCode)
	}
	for _, b := range machine.BuiltinNames() {
		if !bytes.Contains(body, []byte(b)) {
			t.Errorf("unknown-machine body %s does not list %q", body, b)
		}
	}
}
