package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"galsim/internal/campaign"
)

// lockedBuf is a concurrency-safe slog sink.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSweepProgressAPI: POST /sweep names the sweep, the progress endpoint
// serves its terminal snapshot, /sweeps lists it, and unknown IDs 404.
func TestSweepProgressAPI(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/sweep",
		`{"benchmarks":["gcc","li"],"machines":["base","gals"],"instructions":2000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.ID != "s1" || sr.Units != 4 {
		t.Fatalf("sweep response id=%q units=%d", sr.ID, sr.Units)
	}

	resp, body = get(t, ts.URL+"/sweeps/"+sr.ID+"/progress")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress: %d %s", resp.StatusCode, body)
	}
	var st sweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Progress.Completed != 4 || st.Progress.Total != 4 || st.Progress.Failed != 0 {
		t.Errorf("terminal progress = %+v", st)
	}

	var list SweepsResponse
	_, body = get(t, ts.URL+"/sweeps")
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sweeps) != 1 || list.Sweeps[0].ID != sr.ID {
		t.Errorf("sweep list = %+v", list)
	}

	if resp, _ := get(t, ts.URL+"/sweeps/nope/progress"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestServiceMetricsEndpoint: requests show up in the scrape, the cache
// gauges reflect engine state, and the exposition content type is served.
func TestServiceMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	if resp, body := post(t, ts.URL+"/run",
		`{"benchmark":"gcc","instructions":2000}`); resp.StatusCode != 200 {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`galsim_service_http_requests_total{method="POST",route="/run",code="200"} 1`,
		"galsim_service_cache_misses 1",
		"galsim_service_cache_entries 1",
		"galsim_service_workloads 0",
		"galsim_service_machines 0",
		"galsim_service_http_request_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q\n%s", want, text)
		}
	}
}

// TestAccessLogAndRequestID: the access log carries method, path, status and
// the request ID; a client-supplied X-Request-Id is adopted and echoed.
func TestAccessLogAndRequestID(t *testing.T) {
	logs := &lockedBuf{}
	srv := New(campaign.NewEngine(0))
	srv.Log = slog.New(slog.NewTextHandler(logs, nil))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req, err := http.NewRequest("GET", ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "feedc0de00000001")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "feedc0de00000001" {
		t.Errorf("echoed request id = %q", got)
	}
	text := logs.String()
	for _, want := range []string{
		"http request", "method=GET", "path=/healthz", "status=200",
		"request_id=feedc0de00000001",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("access log missing %q\n%s", want, text)
		}
	}
}

// TestRunWithSampling: a spec enabling interval sampling returns the sample
// series over HTTP; without it the field is absent from the JSON.
func TestRunWithSampling(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/run",
		`{"benchmark":"gcc","machine":"gals","instructions":6000,"sample_interval":1000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Samples) == 0 {
		t.Fatal("sampled run returned no samples")
	}
	for _, smp := range rr.Samples {
		if smp.Cycle%1000 != 0 || len(smp.Domains) == 0 {
			t.Errorf("bad sample %+v", smp)
		}
	}

	_, body = post(t, ts.URL+"/run", `{"benchmark":"gcc","instructions":2000}`)
	if bytes.Contains(body, []byte(`"samples"`)) {
		t.Error("unsampled run leaked a samples field")
	}
}
