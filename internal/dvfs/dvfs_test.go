package dvfs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := Default.Validate(); err != nil {
		t.Fatalf("Default invalid: %v", err)
	}
	bad := []Params{
		{VNominal: 0, VThresh: 0.3, Alpha: 1.6},
		{VNominal: 1.65, VThresh: -0.1, Alpha: 1.6},
		{VNominal: 1.0, VThresh: 1.0, Alpha: 1.6},
		{VNominal: 1.65, VThresh: 0.35, Alpha: 0.5},
		{VNominal: 1.65, VThresh: 0.35, Alpha: 2.5},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestDelayFactorAtNominal(t *testing.T) {
	if df := Default.DelayFactor(Default.VNominal); math.Abs(df-1) > 1e-12 {
		t.Errorf("DelayFactor(Vnom) = %v, want 1", df)
	}
}

func TestDelayFactorMonotonic(t *testing.T) {
	prev := math.Inf(1)
	for v := 0.40; v <= 1.65; v += 0.05 {
		df := Default.DelayFactor(v)
		if df >= prev {
			t.Fatalf("DelayFactor not strictly decreasing at v=%v: %v >= %v", v, df, prev)
		}
		prev = df
	}
}

func TestDelayFactorBelowThreshold(t *testing.T) {
	if !math.IsInf(Default.DelayFactor(0.2), 1) {
		t.Error("DelayFactor below Vt should be +Inf")
	}
}

func TestVoltageForSlowdownInvertsDelayFactor(t *testing.T) {
	for _, s := range []float64{1, 1.05, 1.1, 1.2, 1.5, 2, 3, 5} {
		v := Default.VoltageForSlowdown(s)
		if v <= Default.VThresh || v > Default.VNominal {
			t.Fatalf("V(%v) = %v out of range", s, v)
		}
		got := Default.DelayFactor(v)
		if math.Abs(got-s) > 1e-6*s {
			t.Errorf("DelayFactor(V(%v)) = %v, want %v", s, got, s)
		}
	}
}

func TestVoltageForSlowdownUnity(t *testing.T) {
	if v := Default.VoltageForSlowdown(1); v != Default.VNominal {
		t.Errorf("V(1) = %v, want Vnom", v)
	}
}

func TestEnergyScale(t *testing.T) {
	if es := Default.EnergyScale(Default.VNominal); es != 1 {
		t.Errorf("EnergyScale(Vnom) = %v", es)
	}
	if es := Default.EnergyScale(Default.VNominal / 2); math.Abs(es-0.25) > 1e-12 {
		t.Errorf("EnergyScale(Vnom/2) = %v, want 0.25", es)
	}
}

func TestEnergySavingsGrowWithSlowdown(t *testing.T) {
	// The paper's core DVFS claim: slowing a domain and dropping its voltage
	// yields super-linear energy savings (E ∝ V²).
	prev := 1.0
	for _, s := range []float64{1.1, 1.2, 1.5, 2, 3} {
		es := Default.EnergyScaleForSlowdown(s)
		if es >= prev {
			t.Fatalf("EnergyScaleForSlowdown(%v) = %v not < %v", s, es, prev)
		}
		prev = es
	}
	// A 3x slowdown should save well over half the energy.
	if es := Default.EnergyScaleForSlowdown(3); es > 0.5 {
		t.Errorf("EnergyScaleForSlowdown(3) = %v, want < 0.5", es)
	}
}

func TestSmallerAlphaNeedsHigherVoltage(t *testing.T) {
	// For smaller technologies (smaller alpha) the same slowdown allows a
	// smaller voltage reduction... actually Eq. 1 implies savings are HIGHER
	// for smaller alpha? The paper says savings are higher for smaller
	// technology generations (alpha between 1 and 2 vs 2). Verify direction:
	// at fixed slowdown, smaller alpha => lower voltage => more savings.
	p16 := Params{VNominal: 1.65, VThresh: 0.35, Alpha: 1.6}
	p20 := Params{VNominal: 1.65, VThresh: 0.35, Alpha: 2.0}
	v16 := p16.VoltageForSlowdown(2)
	v20 := p20.VoltageForSlowdown(2)
	if v16 >= v20 {
		t.Errorf("alpha=1.6 voltage %v should be below alpha=2.0 voltage %v", v16, v20)
	}
}

func TestIdealSynchronousEnergy(t *testing.T) {
	// Perfect performance => no savings.
	if e := Default.IdealSynchronousEnergy(1); e != 1 {
		t.Errorf("IdealSynchronousEnergy(1) = %v", e)
	}
	// 20% performance loss => energy well below 1.
	e := Default.IdealSynchronousEnergy(0.8)
	if e >= 1 || e <= 0 {
		t.Errorf("IdealSynchronousEnergy(0.8) = %v", e)
	}
	// Monotonic: more performance sacrificed => less energy.
	if Default.IdealSynchronousEnergy(0.7) >= Default.IdealSynchronousEnergy(0.9) {
		t.Error("ideal energy not monotonic in performance ratio")
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"slowdown<1":  func() { Default.VoltageForSlowdown(0.9) },
		"perfRatio>1": func() { Default.IdealSynchronousEnergy(1.5) },
		"perfRatio=0": func() { Default.IdealSynchronousEnergy(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: VoltageForSlowdown is the inverse of DelayFactor over a wide
// range of parameters and slowdowns.
func TestInverseProperty(t *testing.T) {
	f := func(sRaw uint8, aRaw uint8) bool {
		s := 1 + float64(sRaw)/32        // 1 .. ~9
		alpha := 1 + float64(aRaw%11)/10 // 1.0 .. 2.0
		p := Params{VNominal: 1.65, VThresh: 0.35, Alpha: alpha}
		v := p.VoltageForSlowdown(s)
		return math.Abs(p.DelayFactor(v)-s) < 1e-5*s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
