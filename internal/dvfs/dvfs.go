// Package dvfs implements the supply-voltage model of §3.3 and §5.2 of the
// paper: the delay–voltage relationship
//
//	D ∝ Vdd / (Vdd − Vt)^α            (Equation 1, after Chen & Hu)
//
// where Vt is the transistor threshold voltage and α a technology-dependent
// exponent (2 for 0.35 µm; 1.6 for the paper's 0.13 µm experiments). Given a
// clock slowdown factor chosen for a domain, the solver finds the minimum
// supply voltage at which the logic still meets the stretched cycle time;
// dynamic energy then scales with the square of the voltage. The model is
// the paper's idealized one: DC-DC conversion and level-converter overheads
// are not charged.
package dvfs

import (
	"fmt"
	"math"
)

// Params describes the technology operating point.
type Params struct {
	VNominal float64 // nominal supply voltage (V)
	VThresh  float64 // transistor threshold voltage Vt (V)
	Alpha    float64 // velocity-saturation exponent α
}

// Default is the operating point used throughout the paper's second
// experiment set: a 0.13 µm process with α = 1.6 run at a 1.65 V nominal
// supply with Vt = 0.35 V.
var Default = Params{VNominal: 1.65, VThresh: 0.35, Alpha: 1.6}

// Validate reports an error if the parameters are physically meaningless.
func (p Params) Validate() error {
	switch {
	case p.VNominal <= 0:
		return fmt.Errorf("dvfs: nominal voltage %v must be positive", p.VNominal)
	case p.VThresh < 0:
		return fmt.Errorf("dvfs: threshold voltage %v must be non-negative", p.VThresh)
	case p.VThresh >= p.VNominal:
		return fmt.Errorf("dvfs: threshold %v must be below nominal %v", p.VThresh, p.VNominal)
	case p.Alpha < 1 || p.Alpha > 2:
		return fmt.Errorf("dvfs: alpha %v outside [1, 2]", p.Alpha)
	}
	return nil
}

// delay returns the un-normalized logic delay at supply voltage v.
func (p Params) delay(v float64) float64 {
	return v / math.Pow(v-p.VThresh, p.Alpha)
}

// DelayFactor returns D(v)/D(Vnominal): how much slower logic runs at supply
// voltage v relative to the nominal operating point. It is 1 at v = Vnominal
// and grows without bound as v approaches Vt from above.
func (p Params) DelayFactor(v float64) float64 {
	if v <= p.VThresh {
		return math.Inf(1)
	}
	return p.delay(v) / p.delay(p.VNominal)
}

// VoltageForSlowdown returns the minimum supply voltage at which logic delay
// is no more than slowdown × nominal delay; i.e. it solves
// DelayFactor(v) = slowdown for v. slowdown must be >= 1. The answer is
// found by bisection (DelayFactor is strictly decreasing in v for α >= 1)
// to sub-millivolt precision.
func (p Params) VoltageForSlowdown(slowdown float64) float64 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if slowdown < 1 {
		panic(fmt.Sprintf("dvfs: slowdown %v < 1", slowdown))
	}
	if slowdown == 1 {
		return p.VNominal
	}
	lo := p.VThresh + 1e-9 // DelayFactor(lo) ≈ ∞ > slowdown
	hi := p.VNominal       // DelayFactor(hi) = 1 < slowdown
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if p.DelayFactor(mid) > slowdown {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// EnergyScale returns the factor by which dynamic energy per switching event
// changes at supply voltage v: (v/Vnominal)².
func (p Params) EnergyScale(v float64) float64 {
	r := v / p.VNominal
	return r * r
}

// EnergyScaleForSlowdown composes VoltageForSlowdown and EnergyScale: the
// per-access dynamic energy factor earned by slowing a domain by the given
// factor and dropping its voltage accordingly.
func (p Params) EnergyScaleForSlowdown(slowdown float64) float64 {
	return p.EnergyScale(p.VoltageForSlowdown(slowdown))
}

// IdealSynchronousEnergy models the "ideal" comparison column of Figures 12
// and 13: a fully synchronous processor slowed uniformly (single global
// clock and voltage scaled together) until its performance matches a GALS
// configuration's measured relative performance perfRatio (< 1). Running
// 1/perfRatio slower at voltage V(1/perfRatio), it executes the same
// instruction count with energy scaled by (V/Vnom)². The return value is
// that energy, normalized to the full-speed base machine.
func (p Params) IdealSynchronousEnergy(perfRatio float64) float64 {
	if perfRatio <= 0 || perfRatio > 1 {
		panic(fmt.Sprintf("dvfs: performance ratio %v outside (0, 1]", perfRatio))
	}
	return p.EnergyScaleForSlowdown(1 / perfRatio)
}
