package workload

import (
	"math"
	"testing"

	"galsim/internal/isa"
)

func TestAllProfilesValid(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if len(All()) < 12 {
		t.Errorf("only %d profiles registered", len(All()))
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("gcc")
	if err != nil || p.Name != "gcc" {
		t.Fatalf("ByName(gcc) = %v, %v", p.Name, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown benchmark did not error")
	}
}

func TestIntegerBenchmarks(t *testing.T) {
	ints := IntegerBenchmarks()
	if len(ints) < 6 {
		t.Errorf("too few integer benchmarks: %v", ints)
	}
	for _, n := range ints {
		p, _ := ByName(n)
		if p.Suite != "spec95int" {
			t.Errorf("%s in integer set but suite %s", n, p.Suite)
		}
	}
}

// measureMix runs the generator and counts dynamic class fractions.
func measureMix(t *testing.T, name string, n int) map[isa.Class]float64 {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(p, 1)
	counts := map[isa.Class]int{}
	for i := 0; i < n; i++ {
		in := g.Next()
		counts[in.Class]++
	}
	out := map[isa.Class]float64{}
	for c, k := range counts {
		out[c] = float64(k) / float64(n)
	}
	return out
}

func TestDynamicMixTracksProfile(t *testing.T) {
	// Dynamic fractions will not exactly equal static mix fractions (control
	// flow revisits some PCs more than others) but must be in the same
	// ballpark.
	for _, name := range []string{"gcc", "fpppp", "perl", "ijpeg"} {
		p, _ := ByName(name)
		mix := measureMix(t, name, 60_000)
		check := func(label string, got, want float64) {
			tol := 0.6*want + 0.02
			if math.Abs(got-want) > tol {
				t.Errorf("%s: %s fraction = %.3f, profile %.3f", name, label, got, want)
			}
		}
		check("branch", mix[isa.ClassBranch], p.Mix.Branch)
		check("load", mix[isa.ClassLoad], p.Mix.Load)
		check("store", mix[isa.ClassStore], p.Mix.Store)
		fp := mix[isa.ClassFPAdd] + mix[isa.ClassFPMul] + mix[isa.ClassFPDiv]
		check("fp", fp, p.Mix.FPFrac())
	}
}

func TestFppppBranchScarcity(t *testing.T) {
	// The paper's headline workload fact: fpppp has roughly one branch per
	// 67 instructions while integer codes have one per 5-6.
	fp := measureMix(t, "fpppp", 80_000)[isa.ClassBranch]
	gcc := measureMix(t, "gcc", 80_000)[isa.ClassBranch]
	if fp > 0.035 {
		t.Errorf("fpppp branch fraction = %.4f, want < 0.035", fp)
	}
	if gcc < 0.12 {
		t.Errorf("gcc branch fraction = %.4f, want > 0.12", gcc)
	}
	if gcc < 4*fp {
		t.Errorf("gcc (%.4f) should be far branchier than fpppp (%.4f)", gcc, fp)
	}
}

func TestPerlHasNoFP(t *testing.T) {
	mix := measureMix(t, "perl", 40_000)
	fp := mix[isa.ClassFPAdd] + mix[isa.ClassFPMul] + mix[isa.ClassFPDiv]
	if fp != 0 {
		t.Errorf("perl FP fraction = %v, want 0", fp)
	}
}

func TestIjpegLowMemory(t *testing.T) {
	ij := measureMix(t, "ijpeg", 40_000)
	gcc := measureMix(t, "gcc", 40_000)
	ijMem := ij[isa.ClassLoad] + ij[isa.ClassStore]
	gccMem := gcc[isa.ClassLoad] + gcc[isa.ClassStore]
	if ijMem >= gccMem {
		t.Errorf("ijpeg memory fraction %.3f should be below gcc %.3f", ijMem, gccMem)
	}
}

func TestDeterminism(t *testing.T) {
	p, _ := ByName("compress")
	a := NewGenerator(p, 99)
	b := NewGenerator(p, 99)
	for i := 0; i < 5000; i++ {
		x, y := a.Next(), b.Next()
		if x.PC != y.PC || x.Class != y.Class || x.Addr != y.Addr ||
			x.Taken != y.Taken || x.Dest != y.Dest {
			t.Fatalf("instr %d diverged: %v vs %v", i, x, y)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	p, _ := ByName("compress")
	a := NewGenerator(p, 1)
	b := NewGenerator(p, 2)
	same := 0
	for i := 0; i < 2000; i++ {
		x, y := a.Next(), b.Next()
		if x.PC == y.PC && x.Class == y.Class {
			same++
		}
	}
	if same == 2000 {
		t.Error("different seeds produced identical streams")
	}
}

func TestStaticProgramStability(t *testing.T) {
	// A revisited PC must decode identically every time.
	p, _ := ByName("li")
	g := NewGenerator(p, 5)
	seen := map[uint64]isa.Class{}
	seenDest := map[uint64]isa.Reg{}
	for i := 0; i < 50_000; i++ {
		in := g.Next()
		if c, ok := seen[in.PC]; ok {
			if c != in.Class {
				t.Fatalf("pc %#x changed class %v -> %v", in.PC, c, in.Class)
			}
			if seenDest[in.PC] != in.Dest {
				t.Fatalf("pc %#x changed dest", in.PC)
			}
		}
		seen[in.PC] = in.Class
		seenDest[in.PC] = in.Dest
	}
	if len(seen) < 100 {
		t.Errorf("static program suspiciously small: %d PCs", len(seen))
	}
}

func TestPCsStayInFootprint(t *testing.T) {
	p, _ := ByName("adpcm")
	g := NewGenerator(p, 7)
	end := CodeBase + uint64(p.CodeFootprint)
	for i := 0; i < 30_000; i++ {
		in := g.Next()
		if in.PC < CodeBase || in.PC >= end {
			t.Fatalf("pc %#x outside [%#x, %#x)", in.PC, CodeBase, end)
		}
		if in.PC%4 != 0 {
			t.Fatalf("misaligned pc %#x", in.PC)
		}
	}
}

func TestAddressesStayInWorkingSet(t *testing.T) {
	p, _ := ByName("swim")
	g := NewGenerator(p, 7)
	end := DataBase + uint64(p.DataWorkingSet) + hotRegionBytes
	for i := 0; i < 30_000; i++ {
		in := g.Next()
		if in.Class.IsMem() {
			if in.Addr < DataBase || in.Addr >= end {
				t.Fatalf("addr %#x outside working set + hot region", in.Addr)
			}
		} else if in.Addr != 0 {
			t.Fatalf("non-memory instr has addr %#x", in.Addr)
		}
	}
}

func TestBranchTargetsConsistent(t *testing.T) {
	p, _ := ByName("m88ksim")
	g := NewGenerator(p, 3)
	targets := map[uint64]uint64{}
	for i := 0; i < 50_000; i++ {
		in := g.Next()
		if in.Class != isa.ClassBranch {
			continue
		}
		if tgt, ok := targets[in.PC]; ok && tgt != in.Target {
			t.Fatalf("branch %#x target changed %#x -> %#x", in.PC, tgt, in.Target)
		}
		targets[in.PC] = in.Target
	}
}

func TestLoopBranchesLoop(t *testing.T) {
	// Loop-closing branches must be taken (LoopLength-1)/LoopLength of the
	// time; overall taken fraction should be substantial.
	p, _ := ByName("swim") // loop-heavy profile
	g := NewGenerator(p, 11)
	taken, branches := 0, 0
	for i := 0; i < 60_000; i++ {
		in := g.Next()
		if in.Class == isa.ClassBranch {
			branches++
			if in.Taken {
				taken++
			}
		}
	}
	if branches == 0 {
		t.Fatal("no branches generated")
	}
	frac := float64(taken) / float64(branches)
	if frac < 0.5 {
		t.Errorf("loop-heavy benchmark taken fraction = %.3f, want > 0.5", frac)
	}
}

func TestWrongPathLifecycle(t *testing.T) {
	p, _ := ByName("gcc")
	g := NewGenerator(p, 13)
	for i := 0; i < 100; i++ {
		g.Next()
	}
	pcBefore := g.pc
	genBefore := g.Generated()

	g.StartWrongPath(CodeBase + 0x80)
	if !g.InWrongPath() {
		t.Fatal("not in wrong path")
	}
	for i := 0; i < 50; i++ {
		in := g.NextWrongPath()
		if !in.WrongPath {
			t.Fatal("wrong-path instruction not marked")
		}
	}
	if g.WrongPathGenerated() != 50 {
		t.Errorf("wrong-path count = %d", g.WrongPathGenerated())
	}
	g.EndWrongPath()

	// Correct-path state is untouched by the excursion.
	if g.pc != pcBefore || g.Generated() != genBefore {
		t.Error("wrong path perturbed correct-path state")
	}
	in := g.Next()
	if in.WrongPath {
		t.Error("correct-path instruction marked wrong-path")
	}
}

func TestWrongPathDoesNotPerturbGroundTruth(t *testing.T) {
	// Two generators with the same seed; one takes a wrong-path excursion.
	// Their subsequent correct paths must match exactly.
	p, _ := ByName("compress")
	a := NewGenerator(p, 21)
	b := NewGenerator(p, 21)
	for i := 0; i < 500; i++ {
		a.Next()
		b.Next()
	}
	b.StartWrongPath(CodeBase + 0x100)
	for i := 0; i < 200; i++ {
		b.NextWrongPath()
	}
	b.EndWrongPath()
	for i := 0; i < 500; i++ {
		x, y := a.Next(), b.Next()
		// The wrong path shares g.rng? It must not: only branch directions
		// and addresses drawn from the dedicated wrong-path RNG are allowed.
		if x.PC != y.PC || x.Taken != y.Taken {
			t.Fatalf("instr %d diverged after wrong-path excursion: pc %#x/%#x", i, x.PC, y.PC)
		}
	}
}

func TestModeGuards(t *testing.T) {
	p, _ := ByName("gcc")
	for name, fn := range map[string]func(g *Generator){
		"NextWrongPath outside": func(g *Generator) { g.NextWrongPath() },
		"EndWrongPath outside":  func(g *Generator) { g.EndWrongPath() },
		"Next inside": func(g *Generator) {
			g.StartWrongPath(CodeBase)
			g.Next()
		},
		"double StartWrongPath": func(g *Generator) {
			g.StartWrongPath(CodeBase)
			g.StartWrongPath(CodeBase)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn(NewGenerator(p, 1))
		}()
	}
}

func TestSourcesMatchRegisterFiles(t *testing.T) {
	p, _ := ByName("fpppp")
	g := NewGenerator(p, 17)
	for i := 0; i < 30_000; i++ {
		in := g.Next()
		switch {
		case in.Class.IsFP():
			if in.Dest.File != isa.RegFP {
				t.Fatalf("FP op with dest %v", in.Dest)
			}
			if in.Src[0].File != isa.RegFP {
				t.Fatalf("FP op with src0 %v", in.Src[0])
			}
		case in.Class == isa.ClassLoad:
			if in.Src[0].File != isa.RegInt {
				t.Fatalf("load address register %v not integer", in.Src[0])
			}
		case in.Class == isa.ClassBranch:
			if in.Dest.Valid() {
				t.Fatalf("branch with destination %v", in.Dest)
			}
		}
	}
}
