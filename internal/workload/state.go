package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"galsim/internal/isa"
)

// Snapshotter is implemented by instruction sources whose position can be
// captured at a quiescent point and reinstated into a freshly constructed,
// identically configured source. The contract mirrors InstrSource
// determinism: after RestoreSourceState, the restored source must produce
// exactly the stream the captured one would have produced from that point.
type Snapshotter interface {
	// CaptureSourceState serializes the source's position.
	CaptureSourceState() (json.RawMessage, error)
	// RestoreSourceState reinstates a captured position into this source,
	// which must be freshly constructed (nothing produced yet) with the same
	// configuration the capture came from.
	RestoreSourceState(raw json.RawMessage) error
}

var (
	_ Snapshotter = (*Generator)(nil)
	_ Snapshotter = (*PhasedGenerator)(nil)
)

// countingSource wraps math/rand's source, counting state advances. Both
// Int63 and Uint64 advance the underlying generator by exactly one step, so
// the count alone identifies the stream position: a fresh source fast-
// forwarded by (saved − current) Uint64 draws is draw-for-draw identical.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// fastForward advances the stream to the target draw count.
func (c *countingSource) fastForward(target uint64) error {
	if target < c.n {
		return fmt.Errorf("workload: RNG stream at draw %d cannot rewind to %d", c.n, target)
	}
	for c.n < target {
		c.Uint64()
	}
	return nil
}

// StaticInstrState is one materialized static instruction in snapshot form.
// The full record is serialized rather than re-materialized on restore: the
// register recency rings feeding dependency sampling advance with each
// materialization, so the static program depends on the order PCs were
// first visited — state that only the capture knows.
type StaticInstrState struct {
	PC          uint64     `json:"pc"`
	Class       isa.Class  `json:"class"`
	Dest        isa.Reg    `json:"dest"`
	Src         [2]isa.Reg `json:"src"`
	Pattern     uint8      `json:"pattern,omitempty"`
	Target      uint64     `json:"target,omitempty"`
	BiasedTaken bool       `json:"biased_taken,omitempty"`
	SeqStream   bool       `json:"seq_stream,omitempty"`
	LoopCount   int        `json:"loop_count,omitempty"`
	LastTaken   bool       `json:"last_taken,omitempty"`
}

// GeneratorState is a Generator's snapshot form.
type GeneratorState struct {
	RNGDraws  uint64 `json:"rng_draws"`
	WPDraws   uint64 `json:"wp_draws"`
	PC        uint64 `json:"pc"`
	WpPC      uint64 `json:"wp_pc"`
	InWP      bool   `json:"in_wp,omitempty"`
	SeqCursor uint64 `json:"seq_cursor"`
	Generated uint64 `json:"generated"`
	WrongGen  uint64 `json:"wrong_gen"`
	DestCtr   int    `json:"dest_ctr"`
	FPDestCtr int    `json:"fp_dest_ctr"`
	// RecentInt/RecentFP are the register recency rings, oldest first.
	RecentInt []isa.Reg          `json:"recent_int"`
	RecentFP  []isa.Reg          `json:"recent_fp"`
	Program   []StaticInstrState `json:"program,omitempty"`
}

// CaptureState snapshots the generator.
func (g *Generator) CaptureState() GeneratorState {
	st := GeneratorState{
		RNGDraws:  g.rngSrc.n,
		WPDraws:   g.wpSrc.n,
		PC:        g.pc,
		WpPC:      g.wpPC,
		InWP:      g.inWrongPath,
		SeqCursor: g.seqCursor,
		Generated: g.generated,
		WrongGen:  g.wrongGen,
		DestCtr:   g.destCtr,
		FPDestCtr: g.fpDestCtr,
	}
	for i := 0; i < g.recentInt.len(); i++ {
		st.RecentInt = append(st.RecentInt, g.recentInt.at(i))
	}
	for i := 0; i < g.recentFP.len(); i++ {
		st.RecentFP = append(st.RecentFP, g.recentFP.at(i))
	}
	pcs := make([]uint64, 0, len(g.program))
	for pc := range g.program {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		si := g.program[pc]
		st.Program = append(st.Program, StaticInstrState{
			PC: pc, Class: si.class, Dest: si.dest, Src: si.src,
			Pattern: uint8(si.pattern), Target: si.target, BiasedTaken: si.biasedTaken,
			SeqStream: si.seqStream, LoopCount: si.loopCount, LastTaken: si.lastTaken,
		})
	}
	return st
}

// RestoreState reinstates a captured state into this generator, which must
// be freshly constructed with the same (Profile, seed) pair.
func (g *Generator) RestoreState(st GeneratorState) error {
	if g.generated != 0 || g.wrongGen != 0 || len(g.program) != 0 {
		return fmt.Errorf("workload: restore into generator that has already produced instructions")
	}
	if len(st.RecentInt) > recentWindow || len(st.RecentFP) > recentWindow {
		return fmt.Errorf("workload: restored recency rings (%d int, %d fp) exceed window %d",
			len(st.RecentInt), len(st.RecentFP), recentWindow)
	}
	if err := g.rngSrc.fastForward(st.RNGDraws); err != nil {
		return err
	}
	if err := g.wpSrc.fastForward(st.WPDraws); err != nil {
		return err
	}
	for _, ss := range st.Program {
		si := g.newStatic()
		si.class = ss.Class
		si.dest = ss.Dest
		si.src = ss.Src
		si.pattern = branchPattern(ss.Pattern)
		si.target = ss.Target
		si.biasedTaken = ss.BiasedTaken
		si.seqStream = ss.SeqStream
		si.loopCount = ss.LoopCount
		si.lastTaken = ss.LastTaken
		g.program[ss.PC] = si
	}
	g.recentInt = regRing{}
	for _, r := range st.RecentInt {
		g.recentInt.push(r)
	}
	g.recentFP = regRing{}
	for _, r := range st.RecentFP {
		g.recentFP.push(r)
	}
	g.pc = st.PC
	g.wpPC = st.WpPC
	g.inWrongPath = st.InWP
	g.seqCursor = st.SeqCursor
	g.generated = st.Generated
	g.wrongGen = st.WrongGen
	g.destCtr = st.DestCtr
	g.fpDestCtr = st.FPDestCtr
	return nil
}

// CaptureSourceState implements Snapshotter.
func (g *Generator) CaptureSourceState() (json.RawMessage, error) {
	return json.Marshal(g.CaptureState())
}

// RestoreSourceState implements Snapshotter.
func (g *Generator) RestoreSourceState(raw json.RawMessage) error {
	var st GeneratorState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("workload: decoding generator state: %w", err)
	}
	return g.RestoreState(st)
}

// PhasedState is a PhasedGenerator's snapshot form. Phases holds one entry
// per phase; nil marks a phase whose generator was never constructed.
type PhasedState struct {
	Idx       int               `json:"idx"`
	CurCount  uint64            `json:"cur_count"`
	Generated uint64            `json:"generated"`
	Switches  uint64            `json:"switches"`
	Phases    []*GeneratorState `json:"phases"`
}

// CaptureSourceState implements Snapshotter.
func (p *PhasedGenerator) CaptureSourceState() (json.RawMessage, error) {
	st := PhasedState{
		Idx:       p.idx,
		CurCount:  p.curCount,
		Generated: p.generated,
		Switches:  p.switches,
		Phases:    make([]*GeneratorState, len(p.gens)),
	}
	for i, g := range p.gens {
		if g != nil {
			gs := g.CaptureState()
			st.Phases[i] = &gs
		}
	}
	return json.Marshal(st)
}

// RestoreSourceState implements Snapshotter.
func (p *PhasedGenerator) RestoreSourceState(raw json.RawMessage) error {
	var st PhasedState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("workload: decoding phased state: %w", err)
	}
	if p.generated != 0 {
		return fmt.Errorf("workload: restore into phased generator that has already produced instructions")
	}
	if len(st.Phases) != len(p.gens) {
		return fmt.Errorf("workload: restored state has %d phases, this source has %d", len(st.Phases), len(p.gens))
	}
	if st.Idx < 0 || st.Idx >= len(p.gens) {
		return fmt.Errorf("workload: restored phase index %d outside [0, %d)", st.Idx, len(p.gens))
	}
	for i, gs := range st.Phases {
		if gs == nil {
			continue
		}
		g := NewGenerator(p.profs[i], p.seed+int64(i)*0x9E3779B9)
		g.UsePool(p.pool)
		if err := g.RestoreState(*gs); err != nil {
			return fmt.Errorf("workload: phase %d: %w", i, err)
		}
		p.gens[i] = g
	}
	p.idx = st.Idx
	p.curCount = st.CurCount
	p.generated = st.Generated
	p.switches = st.Switches
	return nil
}
