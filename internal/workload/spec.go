package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// PhaseSpec is one phase of a user-defined workload: a statistical profile
// (either a built-in benchmark referenced by name, or an inline custom
// Profile) that runs for Instructions correct-path instructions before the
// workload moves to the next phase.
type PhaseSpec struct {
	// Benchmark names a built-in profile to use for this phase.
	Benchmark string `json:"benchmark,omitempty"`
	// Profile is an inline custom profile for this phase; exactly one of
	// Benchmark and Profile must be set.
	Profile *Profile `json:"profile,omitempty"`
	// Instructions is the phase length in correct-path instructions.
	Instructions uint64 `json:"instructions"`
}

// ProfileSpec is a user-defined workload: a named sequence of phases the
// generator cycles through. A single-phase spec is an ordinary custom
// benchmark; multi-phase specs give the run non-stationary behaviour
// (changing instruction mixes over time) that dynamic per-domain DVFS can
// react to. The JSON form is the wire format accepted by galsim.Options,
// the galsimd service and the galsim-trace CLI.
type ProfileSpec struct {
	Name   string      `json:"name"`
	Phases []PhaseSpec `json:"phases"`
}

// maxPhases bounds a spec's phase count; specs are user input.
const maxPhases = 1024

// Validate reports the first problem with the spec: it is checked exactly
// like the built-in benchmarks (every inline profile passes
// Profile.Validate), plus the structural rules of the phase sequence.
func (s ProfileSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: profile spec without name")
	}
	for _, builtin := range Names() {
		if s.Name == builtin {
			return fmt.Errorf("workload: profile spec name %q collides with a built-in benchmark", s.Name)
		}
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload: profile spec %q has no phases", s.Name)
	}
	if len(s.Phases) > maxPhases {
		return fmt.Errorf("workload: profile spec %q has %d phases, above the %d limit", s.Name, len(s.Phases), maxPhases)
	}
	for i, ph := range s.Phases {
		switch {
		case ph.Benchmark == "" && ph.Profile == nil:
			return fmt.Errorf("workload: %s phase %d: set either benchmark or profile", s.Name, i)
		case ph.Benchmark != "" && ph.Profile != nil:
			return fmt.Errorf("workload: %s phase %d: benchmark and profile are mutually exclusive", s.Name, i)
		case ph.Instructions == 0:
			return fmt.Errorf("workload: %s phase %d: instructions must be positive", s.Name, i)
		}
		if _, err := s.resolvePhase(i); err != nil {
			return err
		}
	}
	return nil
}

// resolvePhase returns phase i's concrete profile, validated. Inline
// profiles without a name or suite get defaults derived from the spec.
func (s ProfileSpec) resolvePhase(i int) (Profile, error) {
	ph := s.Phases[i]
	if ph.Benchmark != "" {
		prof, err := ByName(ph.Benchmark)
		if err != nil {
			return Profile{}, fmt.Errorf("workload: %s phase %d: %w", s.Name, i, err)
		}
		return prof, nil
	}
	prof := *ph.Profile
	if prof.Name == "" {
		prof.Name = fmt.Sprintf("%s/phase%d", s.Name, i)
	}
	if prof.Suite == "" {
		prof.Suite = "custom"
	}
	if err := prof.Validate(); err != nil {
		return Profile{}, fmt.Errorf("workload: %s phase %d: %w", s.Name, i, err)
	}
	return prof, nil
}

// ParseSpec decodes and validates a JSON profile spec, rejecting unknown
// fields so typos in hand-written profiles fail loudly.
func ParseSpec(data []byte) (ProfileSpec, error) {
	var spec ProfileSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return ProfileSpec{}, fmt.Errorf("workload: decoding profile spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return ProfileSpec{}, err
	}
	return spec, nil
}

// NewSpecSource builds the instruction source for a validated spec: a plain
// Generator for single-phase specs, a PhasedGenerator otherwise. The source
// is deterministic for a given (spec, seed) pair.
func NewSpecSource(spec ProfileSpec, seed int64) (InstrSource, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	profs := make([]Profile, len(spec.Phases))
	quotas := make([]uint64, len(spec.Phases))
	for i := range spec.Phases {
		prof, err := spec.resolvePhase(i)
		if err != nil {
			return nil, err
		}
		profs[i] = prof
		quotas[i] = spec.Phases[i].Instructions
	}
	if len(profs) == 1 {
		return NewGenerator(profs[0], seed), nil
	}
	return NewPhasedGenerator(spec.Name, profs, quotas, seed), nil
}
