package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestStaticRandMatchesMathRand pins staticRand's contract: for any seed it
// reproduces rand.New(rand.NewSource(seed)) draw for draw, across the mixed
// Float64/Intn sequences the materializer performs. The generator's static
// programs — and therefore every golden Stats snapshot — depend on this
// equivalence.
func TestStaticRandMatchesMathRand(t *testing.T) {
	var sr staticRand
	check := func(seed int64) bool {
		ref := rand.New(rand.NewSource(seed))
		sr.reset(seed)
		for k := 0; k < 40; k++ {
			switch k % 4 {
			case 0, 2:
				if got, want := sr.Float64(), ref.Float64(); got != want {
					t.Logf("seed %d draw %d: Float64 %v != %v", seed, k, got, want)
					return false
				}
			case 1:
				n := int(seed&0xff)%97 + 2 // non-power-of-two sizes
				if got, want := sr.Intn(n), ref.Intn(n); got != want {
					t.Logf("seed %d draw %d: Intn(%d) %v != %v", seed, k, n, got, want)
					return false
				}
			case 3:
				if got, want := sr.Intn(1<<uint(k%12+1)), ref.Intn(1<<uint(k%12+1)); got != want {
					t.Logf("seed %d draw %d: pow2 Intn %v != %v", seed, k, got, want)
					return false
				}
			}
		}
		return true
	}
	// Edge seeds the normalization branches care about.
	for _, s := range []int64{0, 1, -1, 89482311, 1<<31 - 1, 1 << 31, -(1 << 62), 42} {
		if !check(s) {
			t.Fatalf("divergence at seed %d", s)
		}
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestStaticRandResetIsClean: reseeding with the same value must reproduce
// the same sequence regardless of what was drawn before the reset.
func TestStaticRandResetIsClean(t *testing.T) {
	var sr staticRand
	sr.reset(12345)
	first := make([]float64, 8)
	for i := range first {
		first[i] = sr.Float64()
	}
	sr.reset(999)
	for i := 0; i < 30; i++ {
		sr.Float64() // pollute the lazy cache with another seed's words
	}
	sr.reset(12345)
	for i := range first {
		if got := sr.Float64(); got != first[i] {
			t.Fatalf("draw %d after reset: %v != %v", i, got, first[i])
		}
	}
}

func BenchmarkStaticRandReseed(b *testing.B) {
	b.ReportAllocs()
	var sr staticRand
	s := 0.0
	for i := 0; i < b.N; i++ {
		sr.reset(int64(i))
		s += sr.Float64() + sr.Float64() + sr.Float64()
	}
	_ = s
}

func BenchmarkMathRandReseed(b *testing.B) {
	b.ReportAllocs()
	s := 0.0
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(int64(i)))
		s += r.Float64() + r.Float64() + r.Float64()
	}
	_ = s
}
