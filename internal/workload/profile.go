// Package workload generates the synthetic instruction streams that stand in
// for the paper's Spec95 and Mediabench binaries.
//
// The paper's per-benchmark observations are driven by instruction-mix
// statistics it cites explicitly — fpppp has one branch per 67 instructions
// while most applications have one per five or six; perl has virtually no
// floating-point instructions; ijpeg has a very low proportion of memory
// accesses; gcc has low instruction bandwidth. Each Profile encodes those
// statistics (class mix, branch population behaviour, dependency distances,
// code footprint and data locality), and a Generator lazily materializes a
// *static program* consistent with them: every program counter gets a fixed
// instruction (class, registers, branch target, access pattern) on first
// visit, exactly like real code. The dynamic stream then emerges from
// walking that program, so downstream hardware models (gshare, BTB, caches)
// see self-consistent history and their hit/miss rates *emerge* rather than
// being dialed in.
//
// The generator also produces wrong-path streams: after a misprediction the
// front end keeps fetching from the wrong target until the branch resolves,
// and those instructions come from the same static program.
package workload

import (
	"fmt"
	"sort"
)

// Mix gives the fraction of dynamic instructions in each class. The
// fractions must be non-negative and sum to at most 1; the remainder is
// plain integer ALU work.
type Mix struct {
	IntALU float64 `json:"int_alu,omitempty"`
	IntMul float64 `json:"int_mul,omitempty"`
	FPAdd  float64 `json:"fp_add,omitempty"`
	FPMul  float64 `json:"fp_mul,omitempty"`
	FPDiv  float64 `json:"fp_div,omitempty"`
	Load   float64 `json:"load,omitempty"`
	Store  float64 `json:"store,omitempty"`
	Branch float64 `json:"branch,omitempty"`
}

// Sum returns the total of all fractions.
func (m Mix) Sum() float64 {
	return m.IntALU + m.IntMul + m.FPAdd + m.FPMul + m.FPDiv + m.Load + m.Store + m.Branch
}

// FPFrac returns the floating-point fraction of the mix.
func (m Mix) FPFrac() float64 { return m.FPAdd + m.FPMul + m.FPDiv }

// MemFrac returns the memory fraction of the mix.
func (m Mix) MemFrac() float64 { return m.Load + m.Store }

// PatternMix describes the behavioural population of static branches: what
// fraction are strongly biased (easy), loop-closing (easy with a counter),
// alternating (easy for gshare), and data-dependent random (hard). The
// fractions must sum to 1.
type PatternMix struct {
	Biased      float64 `json:"biased,omitempty"`      // ~97% one direction
	Loop        float64 `json:"loop,omitempty"`        // taken LoopLength-1 times, then not taken
	Alternating float64 `json:"alternating,omitempty"` // strict T/N alternation
	Random      float64 `json:"random,omitempty"`      // coin flip with RandomTakenProb
}

// Sum returns the total of all fractions.
func (p PatternMix) Sum() float64 { return p.Biased + p.Loop + p.Alternating + p.Random }

// Profile statistically characterizes one benchmark. The JSON form is the
// wire format of user-defined profiles (ProfileSpec phases, the galsimd
// workload-upload endpoint and the galsim-trace CLI).
type Profile struct {
	Name  string `json:"name,omitempty"`
	Suite string `json:"suite,omitempty"` // "spec95int", "spec95fp", "mediabench", "custom"

	Mix Mix `json:"mix"`

	// FPLoadFrac is the fraction of loads whose destination is an FP
	// register (FP data being streamed to the FP cluster).
	FPLoadFrac float64 `json:"fp_load_frac,omitempty"`

	// CodeFootprint is the byte size of the instruction working set; it
	// determines I-cache behaviour (16 KB direct-mapped L1I).
	CodeFootprint int `json:"code_footprint"`

	// Branch population behaviour.
	Patterns        PatternMix `json:"patterns"`
	LoopLength      int        `json:"loop_length"`                 // iterations of loop-closing branches
	RandomTakenProb float64    `json:"random_taken_prob,omitempty"` // bias of "random" branches

	// DepDistP is the parameter of the geometric distribution of register
	// dependency distances: larger p = shorter dependencies = less ILP.
	DepDistP float64 `json:"dep_dist_p"`

	// Data-side locality.
	DataWorkingSet int     `json:"data_working_set"`   // bytes of data working set
	SeqFrac        float64 `json:"seq_frac,omitempty"` // fraction of static memory instructions that stream sequentially
	StrideBytes    int     `json:"stride_bytes"`       // stride of streaming accesses
}

// Validate reports an error for a malformed profile.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile without name")
	case p.Mix.Sum() > 1+1e-9:
		return fmt.Errorf("workload: %s: mix sums to %v > 1", p.Name, p.Mix.Sum())
	case p.Mix.Branch < 0 || p.Mix.Load < 0 || p.Mix.Store < 0:
		return fmt.Errorf("workload: %s: negative mix fraction", p.Name)
	case p.FPLoadFrac < 0 || p.FPLoadFrac > 1:
		return fmt.Errorf("workload: %s: FPLoadFrac %v outside [0,1]", p.Name, p.FPLoadFrac)
	case p.CodeFootprint < 256:
		return fmt.Errorf("workload: %s: code footprint %d too small", p.Name, p.CodeFootprint)
	case p.CodeFootprint > maxFootprint:
		return fmt.Errorf("workload: %s: code footprint %d above the %d limit", p.Name, p.CodeFootprint, maxFootprint)
	case absf(p.Patterns.Sum()-1) > 1e-6:
		return fmt.Errorf("workload: %s: branch patterns sum to %v != 1", p.Name, p.Patterns.Sum())
	case p.LoopLength < 2:
		return fmt.Errorf("workload: %s: loop length %d < 2", p.Name, p.LoopLength)
	case p.LoopLength > 1<<24:
		return fmt.Errorf("workload: %s: loop length %d above the %d limit", p.Name, p.LoopLength, 1<<24)
	case p.RandomTakenProb < 0 || p.RandomTakenProb > 1:
		return fmt.Errorf("workload: %s: RandomTakenProb %v outside [0,1]", p.Name, p.RandomTakenProb)
	case p.DepDistP <= 0 || p.DepDistP >= 1:
		return fmt.Errorf("workload: %s: DepDistP %v outside (0,1)", p.Name, p.DepDistP)
	case p.DataWorkingSet < 1024:
		return fmt.Errorf("workload: %s: data working set %d too small", p.Name, p.DataWorkingSet)
	case p.DataWorkingSet > maxFootprint:
		return fmt.Errorf("workload: %s: data working set %d above the %d limit", p.Name, p.DataWorkingSet, maxFootprint)
	case p.SeqFrac < 0 || p.SeqFrac > 1:
		return fmt.Errorf("workload: %s: SeqFrac %v outside [0,1]", p.Name, p.SeqFrac)
	case p.StrideBytes <= 0:
		return fmt.Errorf("workload: %s: stride %d must be positive", p.Name, p.StrideBytes)
	case p.StrideBytes > 1<<20:
		return fmt.Errorf("workload: %s: stride %d above the %d limit", p.Name, p.StrideBytes, 1<<20)
	}
	return nil
}

// maxFootprint bounds user-supplied code footprints and data working sets
// (1 GiB): profiles arrive over HTTP and from files, and the generator's
// lazy static program must stay bounded by sane inputs, not trusted ones.
const maxFootprint = 1 << 30

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// profiles is the registry of benchmark stand-ins. Mix numbers follow the
// published characterizations of Spec95 and Mediabench at the granularity
// the paper relies on: branch density, FP density, memory density, and
// footprints. They are stand-ins, not measurements of the original binaries.
var profiles = []Profile{
	// ---- Spec95 integer ----
	{
		Name: "compress", Suite: "spec95int",
		Mix:           Mix{IntALU: 0.42, IntMul: 0.01, Load: 0.22, Store: 0.12, Branch: 0.17},
		CodeFootprint: 6 << 10,
		Patterns:      PatternMix{Biased: 0.6, Loop: 0.25, Alternating: 0.05, Random: 0.1},
		LoopLength:    24, RandomTakenProb: 0.5,
		DepDistP:       0.28,
		DataWorkingSet: 512 << 10, SeqFrac: 0.55, StrideBytes: 8,
	},
	{
		Name: "gcc", Suite: "spec95int",
		// Low instruction bandwidth: big code footprint (heavy I-cache
		// missing) and branchy control flow.
		Mix:           Mix{IntALU: 0.38, IntMul: 0.01, Load: 0.24, Store: 0.13, Branch: 0.19},
		CodeFootprint: 96 << 10,
		Patterns:      PatternMix{Biased: 0.63, Loop: 0.2, Alternating: 0.05, Random: 0.12},
		LoopLength:    10, RandomTakenProb: 0.45,
		DepDistP:       0.28,
		DataWorkingSet: 1 << 20, SeqFrac: 0.35, StrideBytes: 8,
	},
	{
		Name: "go", Suite: "spec95int",
		Mix:           Mix{IntALU: 0.43, IntMul: 0.01, Load: 0.22, Store: 0.10, Branch: 0.19},
		CodeFootprint: 48 << 10,
		Patterns:      PatternMix{Biased: 0.55, Loop: 0.24, Alternating: 0.05, Random: 0.16},
		LoopLength:    12, RandomTakenProb: 0.5,
		DepDistP:       0.28,
		DataWorkingSet: 256 << 10, SeqFrac: 0.30, StrideBytes: 8,
	},
	{
		Name: "ijpeg", Suite: "spec95int",
		// Very low proportion of memory accesses (paper §5.2); compute bound.
		Mix:           Mix{IntALU: 0.55, IntMul: 0.06, Load: 0.12, Store: 0.05, Branch: 0.16},
		CodeFootprint: 14 << 10,
		Patterns:      PatternMix{Biased: 0.6, Loop: 0.27, Alternating: 0.05, Random: 0.08},
		LoopLength:    16, RandomTakenProb: 0.5,
		DepDistP:       0.28,
		DataWorkingSet: 192 << 10, SeqFrac: 0.70, StrideBytes: 8,
	},
	{
		Name: "li", Suite: "spec95int",
		Mix:           Mix{IntALU: 0.40, IntMul: 0.0, Load: 0.26, Store: 0.14, Branch: 0.18},
		CodeFootprint: 20 << 10,
		Patterns:      PatternMix{Biased: 0.63, Loop: 0.22, Alternating: 0.05, Random: 0.1},
		LoopLength:    8, RandomTakenProb: 0.5,
		DepDistP:       0.28,
		DataWorkingSet: 128 << 10, SeqFrac: 0.40, StrideBytes: 8,
	},
	{
		Name: "m88ksim", Suite: "spec95int",
		Mix:           Mix{IntALU: 0.44, IntMul: 0.01, Load: 0.20, Store: 0.09, Branch: 0.20},
		CodeFootprint: 28 << 10,
		Patterns:      PatternMix{Biased: 0.65, Loop: 0.2, Alternating: 0.05, Random: 0.1},
		LoopLength:    20, RandomTakenProb: 0.5,
		DepDistP:       0.28,
		DataWorkingSet: 96 << 10, SeqFrac: 0.45, StrideBytes: 8,
	},
	{
		Name: "perl", Suite: "spec95int",
		// Virtually no floating-point instructions (paper §5.2).
		Mix:           Mix{IntALU: 0.40, IntMul: 0.01, Load: 0.25, Store: 0.13, Branch: 0.18},
		CodeFootprint: 56 << 10,
		Patterns:      PatternMix{Biased: 0.63, Loop: 0.2, Alternating: 0.05, Random: 0.12},
		LoopLength:    10, RandomTakenProb: 0.5,
		DepDistP:       0.28,
		DataWorkingSet: 512 << 10, SeqFrac: 0.35, StrideBytes: 8,
	},
	{
		Name: "vortex", Suite: "spec95int",
		Mix:           Mix{IntALU: 0.36, IntMul: 0.0, Load: 0.27, Store: 0.16, Branch: 0.17},
		CodeFootprint: 72 << 10,
		Patterns:      PatternMix{Biased: 0.67, Loop: 0.18, Alternating: 0.05, Random: 0.1},
		LoopLength:    12, RandomTakenProb: 0.5,
		DepDistP:       0.28,
		DataWorkingSet: 2 << 20, SeqFrac: 0.40, StrideBytes: 8,
	},
	// ---- Spec95 floating point ----
	{
		Name: "fpppp", Suite: "spec95fp",
		// Exceptionally small branch fraction: one branch per 67
		// instructions (paper §5.1); enormous basic blocks of FP work.
		Mix:           Mix{IntALU: 0.18, IntMul: 0.0, FPAdd: 0.22, FPMul: 0.22, FPDiv: 0.015, Load: 0.25, Store: 0.10, Branch: 0.015},
		FPLoadFrac:    0.80,
		CodeFootprint: 24 << 10,
		Patterns:      PatternMix{Biased: 0.7, Loop: 0.25, Alternating: 0, Random: 0.05},
		LoopLength:    40, RandomTakenProb: 0.5,
		DepDistP:       0.15,
		DataWorkingSet: 256 << 10, SeqFrac: 0.75, StrideBytes: 8,
	},
	{
		Name: "swim", Suite: "spec95fp",
		Mix:           Mix{IntALU: 0.20, IntMul: 0.0, FPAdd: 0.22, FPMul: 0.18, FPDiv: 0.005, Load: 0.24, Store: 0.10, Branch: 0.055},
		FPLoadFrac:    0.85,
		CodeFootprint: 8 << 10,
		Patterns:      PatternMix{Biased: 0.32, Loop: 0.65, Alternating: 0, Random: 0.03},
		LoopLength:    64, RandomTakenProb: 0.5,
		DepDistP:       0.17,
		DataWorkingSet: 4 << 20, SeqFrac: 0.90, StrideBytes: 8,
	},
	{
		Name: "applu", Suite: "spec95fp",
		Mix:           Mix{IntALU: 0.22, IntMul: 0.0, FPAdd: 0.20, FPMul: 0.17, FPDiv: 0.02, Load: 0.25, Store: 0.08, Branch: 0.06},
		FPLoadFrac:    0.85,
		CodeFootprint: 16 << 10,
		Patterns:      PatternMix{Biased: 0.33, Loop: 0.6, Alternating: 0, Random: 0.07},
		LoopLength:    32, RandomTakenProb: 0.5,
		DepDistP:       0.17,
		DataWorkingSet: 2 << 20, SeqFrac: 0.85, StrideBytes: 8,
	},
	// ---- Mediabench ----
	{
		Name: "adpcm", Suite: "mediabench",
		// Tiny kernel, integer only, tight serial dependences.
		Mix:           Mix{IntALU: 0.52, IntMul: 0.0, Load: 0.14, Store: 0.07, Branch: 0.22},
		CodeFootprint: 2 << 10,
		Patterns:      PatternMix{Biased: 0.55, Loop: 0.25, Alternating: 0.1, Random: 0.1},
		LoopLength:    16, RandomTakenProb: 0.5,
		DepDistP:       0.4,
		DataWorkingSet: 32 << 10, SeqFrac: 0.90, StrideBytes: 4,
	},
	{
		Name: "epic", Suite: "mediabench",
		Mix:           Mix{IntALU: 0.40, IntMul: 0.03, FPAdd: 0.08, FPMul: 0.08, FPDiv: 0.005, Load: 0.20, Store: 0.08, Branch: 0.12},
		FPLoadFrac:    0.40,
		CodeFootprint: 10 << 10,
		Patterns:      PatternMix{Biased: 0.5, Loop: 0.37, Alternating: 0.05, Random: 0.08},
		LoopLength:    24, RandomTakenProb: 0.5,
		DepDistP:       0.25,
		DataWorkingSet: 256 << 10, SeqFrac: 0.75, StrideBytes: 8,
	},
	{
		Name: "g721", Suite: "mediabench",
		Mix:           Mix{IntALU: 0.50, IntMul: 0.04, Load: 0.16, Store: 0.08, Branch: 0.18},
		CodeFootprint: 4 << 10,
		Patterns:      PatternMix{Biased: 0.58, Loop: 0.27, Alternating: 0.05, Random: 0.1},
		LoopLength:    12, RandomTakenProb: 0.5,
		DepDistP:       0.35,
		DataWorkingSet: 24 << 10, SeqFrac: 0.70, StrideBytes: 4,
	},
	{
		Name: "mpeg2", Suite: "mediabench",
		Mix:           Mix{IntALU: 0.45, IntMul: 0.05, FPAdd: 0.04, FPMul: 0.04, Load: 0.20, Store: 0.08, Branch: 0.13},
		FPLoadFrac:    0.25,
		CodeFootprint: 18 << 10,
		Patterns:      PatternMix{Biased: 0.57, Loop: 0.33, Alternating: 0, Random: 0.1},
		LoopLength:    16, RandomTakenProb: 0.5,
		DepDistP:       0.28,
		DataWorkingSet: 512 << 10, SeqFrac: 0.80, StrideBytes: 8,
	},
}

// All returns every registered profile, sorted by suite then name. The
// returned slice is a fresh copy on every call; callers may mutate it
// without corrupting the registry.
func All() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns the profile names in All() order, as a fresh copy on
// every call.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Name
	}
	return out
}

// ByName looks up a profile.
func ByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q (known: %v)", name, Names())
}

// IntegerBenchmarks returns the names of the Spec95 integer stand-ins, the
// population Figure 8's "integer applications" statistic is computed over.
func IntegerBenchmarks() []string {
	var out []string
	for _, p := range All() {
		if p.Suite == "spec95int" {
			out = append(out, p.Name)
		}
	}
	return out
}
