package workload

import "galsim/internal/isa"

// InstrSource is the pipeline front-end's view of a workload: a supplier of
// dynamic instructions with ground-truth branch outcomes and memory
// addresses, plus a wrong-path mode entered after a misprediction and left
// when the redirect arrives.
//
// The synthetic Generator is the canonical implementation; trace replay
// (internal/trace.ReplaySource) and the phased multi-profile generator
// implement the same contract, so the simulated machine is indifferent to
// where its instruction stream comes from.
//
// Contract, mirroring Generator's semantics:
//
//   - Next may only be called outside wrong-path mode, NextWrongPath only
//     inside it; violations panic (they are simulator bugs, not input
//     errors).
//   - StartWrongPath(target) enters wrong-path mode at the mispredicted
//     target (0 = junk fetch past the branch); EndWrongPath leaves it.
//   - CurrentPC reports the address of the instruction the next Next (or
//     NextWrongPath) call will produce, without advancing; the fetch stage
//     uses it for the I-cache access that precedes delivery.
//   - The produced stream must be deterministic: two sources constructed
//     identically and driven with the same call sequence must produce
//     identical instructions.
type InstrSource interface {
	Next() *isa.Instr
	NextWrongPath() *isa.Instr
	StartWrongPath(target uint64)
	EndWrongPath()
	InWrongPath() bool
	CurrentPC() uint64
}

// PoolUser is implemented by sources that can allocate their instruction
// records from a caller-owned arena (isa.Pool) instead of the heap. The
// pipeline hands its pool to the source before the run starts and recycles
// each record when the last pipeline structure releases it, making the
// per-instruction path allocation-free. UsePool reports whether the source
// will actually allocate from the pool — a wrapper around a non-pooling
// source must return false so the caller leaves recycling off (recycling
// heap-allocated records would corrupt the arena's reference accounting).
// UsePool(nil) reverts the source to ordinary heap allocation; records from
// either path are identical, so pooling never changes simulation results.
type PoolUser interface {
	UsePool(*isa.Pool) bool
}

// Compile-time checks that the package's sources satisfy the interfaces.
var (
	_ InstrSource = (*Generator)(nil)
	_ InstrSource = (*PhasedGenerator)(nil)
	_ PoolUser    = (*Generator)(nil)
	_ PoolUser    = (*PhasedGenerator)(nil)
)
