package workload

import "galsim/internal/isa"

// InstrSource is the pipeline front-end's view of a workload: a supplier of
// dynamic instructions with ground-truth branch outcomes and memory
// addresses, plus a wrong-path mode entered after a misprediction and left
// when the redirect arrives.
//
// The synthetic Generator is the canonical implementation; trace replay
// (internal/trace.ReplaySource) and the phased multi-profile generator
// implement the same contract, so the simulated machine is indifferent to
// where its instruction stream comes from.
//
// Contract, mirroring Generator's semantics:
//
//   - Next may only be called outside wrong-path mode, NextWrongPath only
//     inside it; violations panic (they are simulator bugs, not input
//     errors).
//   - StartWrongPath(target) enters wrong-path mode at the mispredicted
//     target (0 = junk fetch past the branch); EndWrongPath leaves it.
//   - CurrentPC reports the address of the instruction the next Next (or
//     NextWrongPath) call will produce, without advancing; the fetch stage
//     uses it for the I-cache access that precedes delivery.
//   - The produced stream must be deterministic: two sources constructed
//     identically and driven with the same call sequence must produce
//     identical instructions.
type InstrSource interface {
	Next() *isa.Instr
	NextWrongPath() *isa.Instr
	StartWrongPath(target uint64)
	EndWrongPath()
	InWrongPath() bool
	CurrentPC() uint64
}

// Compile-time checks that the package's sources satisfy the interface.
var (
	_ InstrSource = (*Generator)(nil)
	_ InstrSource = (*PhasedGenerator)(nil)
)
