package workload

import (
	"fmt"
	"math/rand"

	"galsim/internal/isa"
)

// CodeBase is the virtual address where generated code begins.
const CodeBase uint64 = 0x0040_0000

// DataBase is the virtual address where generated data begins.
const DataBase uint64 = 0x1000_0000

// branchPattern classifies a static branch's behaviour.
type branchPattern uint8

const (
	patBiased branchPattern = iota
	patLoop
	patAlternating
	patRandom
)

// staticInstr is one instruction of the lazily materialized static program.
// A given PC always decodes to the same instruction, like real code, so the
// branch predictor, BTB and I-cache observe self-consistent history.
type staticInstr struct {
	class isa.Class
	dest  isa.Reg
	src   [2]isa.Reg

	// Branch fields.
	pattern     branchPattern
	target      uint64
	biasedTaken bool // favored direction of a biased branch

	// Memory fields.
	seqStream bool // streams sequentially vs. random within the working set

	// Dynamic ground-truth state of a static branch (advanced only by the
	// correct-path walk). Folded into the static record so branch outcome
	// tracking needs no separate map.
	loopCount int
	lastTaken bool
}

// Generator produces the dynamic instruction stream of one benchmark run.
// It is deterministic for a given (Profile, seed) pair.
type Generator struct {
	prof Profile
	seed int64
	rng  *rand.Rand
	wp   *rand.Rand // separate stream for wrong-path choices

	// rngSrc/wpSrc are the counting wrappers underneath rng/wp; the draw
	// counts are the streams' snapshot identity (see state.go).
	rngSrc *countingSource
	wpSrc  *countingSource

	program   map[uint64]*staticInstr
	siChunks  [][]staticInstr // slab storage behind program (stable pointers)
	classTile []isa.Class     // class layout pattern, indexed by (pc/4) % len

	// Correct-path walk state.
	pc uint64

	// Wrong-path walk state.
	inWrongPath bool
	wpPC        uint64

	// Register recency rings for dependency-distance sampling, maintained in
	// static creation order.
	recentInt regRing
	recentFP  regRing
	destCtr   int
	fpDestCtr int

	// pool, when non-nil, supplies instruction records (see
	// workload.PoolUser); nil falls back to heap allocation.
	pool *isa.Pool

	// srand is the reusable lazily-seeded RNG for static-instruction
	// materialization (see staticRng).
	srand staticRand

	// Data address state.
	seqCursor uint64

	generated uint64
	wrongGen  uint64
}

// NewGenerator builds a generator for the profile. The profile is validated;
// a bad profile panics (profiles are compiled-in data, not user input).
func NewGenerator(p Profile, seed int64) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	rngSrc := newCountingSource(seed)
	wpSrc := newCountingSource(seed ^ 0x5DEECE66D)
	g := &Generator{
		prof:   p,
		seed:   seed,
		rng:    rand.New(rngSrc),
		wp:     rand.New(wpSrc),
		rngSrc: rngSrc,
		wpSrc:  wpSrc,
		// Pre-size for the full static program so steady-state
		// materialization does not grow the table.
		program: make(map[uint64]*staticInstr, p.CodeFootprint/4),
		pc:      CodeBase,
	}
	// Seed the recency rings so early instructions have producers to name.
	for i := 0; i < 8; i++ {
		g.recentInt.push(isa.Reg{File: isa.RegInt, Index: uint8(i)})
		g.recentFP.push(isa.Reg{File: isa.RegFP, Index: uint8(i)})
	}
	g.classTile = buildClassTile(p.Mix, g.rng)
	return g
}

// tileLen is the period of the class layout pattern. Any contiguous run of
// tileLen instructions contains the profile mix in exact proportion, so the
// dynamic mix stays faithful even when execution concentrates in a few hot
// loops (as it does in real programs).
const tileLen = 256

// buildClassTile lays out tileLen instruction classes in the profile's exact
// proportions (largest-remainder rounding) and shuffles them.
func buildClassTile(m Mix, rng *rand.Rand) []isa.Class {
	type slot struct {
		class isa.Class
		frac  float64
	}
	slots := []slot{
		{isa.ClassBranch, m.Branch},
		{isa.ClassLoad, m.Load},
		{isa.ClassStore, m.Store},
		{isa.ClassFPAdd, m.FPAdd},
		{isa.ClassFPMul, m.FPMul},
		{isa.ClassFPDiv, m.FPDiv},
		{isa.ClassIntMul, m.IntMul},
	}
	tile := make([]isa.Class, 0, tileLen)
	for _, s := range slots {
		n := int(s.frac*tileLen + 0.5)
		for i := 0; i < n && len(tile) < tileLen; i++ {
			tile = append(tile, s.class)
		}
	}
	for len(tile) < tileLen {
		tile = append(tile, isa.ClassIntALU)
	}
	rng.Shuffle(len(tile), func(i, j int) { tile[i], tile[j] = tile[j], tile[i] })
	return tile
}

// classAt returns the instruction class at pc, from the layout tile.
func (g *Generator) classAt(pc uint64) isa.Class {
	return g.classTile[(pc>>2)%uint64(len(g.classTile))]
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// Generated returns the number of correct-path instructions produced.
func (g *Generator) Generated() uint64 { return g.generated }

// WrongPathGenerated returns the number of wrong-path instructions produced.
func (g *Generator) WrongPathGenerated() uint64 { return g.wrongGen }

// codeEnd returns the first address past the code footprint.
func (g *Generator) codeEnd() uint64 { return CodeBase + uint64(g.prof.CodeFootprint) }

// geometric samples a dependency distance >= 1 with parameter p, capped.
func (g *Generator) geometric(rng *staticRand) int {
	d := 1
	for d < 12 && rng.Float64() > g.prof.DepDistP {
		d++
	}
	return d
}

func (g *Generator) pickRecent(rng *staticRand, ring *regRing) isa.Reg {
	d := g.geometric(rng)
	if d > ring.len() {
		d = ring.len()
	}
	return ring.at(ring.len() - d)
}

// pickRecentFar is pickRecent with the distance shifted by extra producers:
// the named value was computed further back in the past.
func (g *Generator) pickRecentFar(rng *staticRand, ring *regRing, extra int) isa.Reg {
	d := g.geometric(rng) + extra
	if d > ring.len() {
		d = ring.len()
	}
	return ring.at(ring.len() - d)
}

func (g *Generator) pushRecent(r isa.Reg) {
	if r.File == isa.RegFP {
		g.recentFP.push(r)
		return
	}
	g.recentInt.push(r)
}

// nextIntDest allocates the next integer destination register, skipping the
// hardwired zero register.
func (g *Generator) nextIntDest() isa.Reg {
	r := isa.Reg{File: isa.RegInt, Index: uint8(g.destCtr % (isa.NumArchRegs - 1))}
	g.destCtr++
	return r
}

func (g *Generator) nextFPDest() isa.Reg {
	r := isa.Reg{File: isa.RegFP, Index: uint8(g.fpDestCtr % isa.NumArchRegs)}
	g.fpDestCtr++
	return r
}

// staticRng returns a deterministic RNG for materializing the static
// instruction at pc. Deriving it from (seed, pc) rather than from a shared
// stream makes the static program independent of materialization order, so
// a wrong-path excursion (which may materialize new PCs) cannot perturb the
// correct path's ground truth. The returned RNG is the generator's reusable
// staticRand, reseeded in place: draw-for-draw identical to
// rand.New(rand.NewSource(z)) but without expanding the full generator
// state per pc (see staticrand.go).
func (g *Generator) staticRng(pc uint64) *staticRand {
	z := uint64(g.seed) ^ (pc * 0x9E3779B97F4A7C15)
	// splitmix64 finalizer.
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	g.srand.reset(int64(z))
	return &g.srand
}

// materialize returns the static instruction at pc, creating it on first
// visit.
func (g *Generator) materialize(pc uint64) *staticInstr {
	if si, ok := g.program[pc]; ok {
		return si
	}
	rng := g.staticRng(pc)
	si := g.newStatic()
	si.class = g.classAt(pc)
	switch si.class {
	case isa.ClassBranch:
		// Branch conditions (loop counters, flags) are typically computed
		// well before the branch: shift the dependency distance so branches
		// usually find their operand already committed and resolve quickly.
		si.src[0] = g.pickRecentFar(rng, &g.recentInt, 4)
		x := rng.Float64()
		pm := g.prof.Patterns
		switch {
		case x < pm.Biased:
			si.pattern = patBiased
			si.biasedTaken = rng.Float64() < 0.65
			si.target = g.randomTarget(pc, rng)
		case x < pm.Biased+pm.Loop:
			si.pattern = patLoop
			si.target = g.loopTarget(pc, rng)
		case x < pm.Biased+pm.Loop+pm.Alternating:
			si.pattern = patAlternating
			si.target = g.randomTarget(pc, rng)
		default:
			si.pattern = patRandom
			si.target = g.randomTarget(pc, rng)
		}
	case isa.ClassLoad:
		si.src[0] = g.pickRecent(rng, &g.recentInt) // address register
		if rng.Float64() < g.prof.FPLoadFrac {
			si.dest = g.nextFPDest()
		} else {
			si.dest = g.nextIntDest()
		}
		si.seqStream = rng.Float64() < g.prof.SeqFrac
		g.pushRecent(si.dest)
	case isa.ClassStore:
		si.src[0] = g.pickRecent(rng, &g.recentInt) // address register
		if g.prof.FPLoadFrac > 0 && rng.Float64() < g.prof.FPLoadFrac {
			si.src[1] = g.pickRecent(rng, &g.recentFP)
		} else {
			si.src[1] = g.pickRecent(rng, &g.recentInt)
		}
		si.seqStream = rng.Float64() < g.prof.SeqFrac
	case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
		si.src[0] = g.pickRecent(rng, &g.recentFP)
		si.src[1] = g.pickRecent(rng, &g.recentFP)
		si.dest = g.nextFPDest()
		g.pushRecent(si.dest)
	default: // integer ALU / multiply
		si.src[0] = g.pickRecent(rng, &g.recentInt)
		if rng.Float64() < 0.45 {
			si.src[1] = g.pickRecent(rng, &g.recentInt)
		}
		si.dest = g.nextIntDest()
		g.pushRecent(si.dest)
	}
	g.program[pc] = si
	return si
}

// branchGap returns the expected dynamic distance between branches, in
// instructions: the scale for branch hop and loop body sizes. Keeping
// control-transfer distances proportional to branch scarcity keeps the
// dynamic class mix close to the static one (a small loop body would
// otherwise over-weight its closing branch in the dynamic stream).
func (g *Generator) branchGap() int {
	if g.prof.Mix.Branch <= 0 {
		return 64
	}
	gap := int(1 / g.prof.Mix.Branch)
	if gap < 6 {
		gap = 6
	}
	if gap > 256 {
		gap = 256
	}
	return gap
}

// randomTarget picks a fixed branch target within the code footprint. All
// non-loop targets are strictly forward (if/else hops and calls); only loop
// branches jump backward. A backward non-loop target would form an
// unintended tight cycle pinned on its branch, grossly over-representing
// branch PCs in the dynamic stream.
func (g *Generator) randomTarget(pc uint64, rng *staticRand) uint64 {
	span := uint64(g.prof.CodeFootprint)
	var hop uint64
	if rng.Float64() < 0.85 {
		hop = uint64(rng.Intn(2*g.branchGap())+2) * 4 // short forward hop
	} else {
		hop = uint64(rng.Intn(g.prof.CodeFootprint/8)+8) * 4 // long-range hop
	}
	t := pc + hop
	if t >= CodeBase+span {
		t = CodeBase + (t-CodeBase)%span // wrap: one big cycle over the code
	}
	if t == pc { // avoid self-loop degenerate case
		t = pc + 4
		if t >= CodeBase+span {
			t = CodeBase
		}
	}
	return t
}

// loopTarget picks a backward target forming a loop body.
func (g *Generator) loopTarget(pc uint64, rng *staticRand) uint64 {
	gap := g.branchGap()
	body := uint64(rng.Intn(gap)+gap/2+1) * 4
	if pc < CodeBase+body {
		return CodeBase
	}
	return pc - body
}

// outcome computes and advances the ground-truth direction of the branch at
// pc. Only the correct path mutates branch state (held on the static
// record).
func (g *Generator) outcome(pc uint64, si *staticInstr) bool {
	switch si.pattern {
	case patBiased:
		if g.rng.Float64() < 0.97 {
			return si.biasedTaken
		}
		return !si.biasedTaken
	case patLoop:
		si.loopCount++
		if si.loopCount >= g.prof.LoopLength {
			si.loopCount = 0
			return false // exit the loop
		}
		return true
	case patAlternating:
		si.lastTaken = !si.lastTaken
		return si.lastTaken
	default:
		return g.rng.Float64() < g.prof.RandomTakenProb
	}
}

// hotRegionBytes is the size of the high-locality data region (stack frames
// and hot heap objects) that non-streaming accesses favour. Real programs
// concentrate the bulk of their references on a cache-resident hot set; a
// uniform draw over the working set would produce data-cache hit rates far
// below anything Spec95 exhibits.
const hotRegionBytes = 8 << 10

// hotFraction is the probability that a non-streaming access falls in the
// hot region.
const hotFraction = 0.90

// dataAddr produces the effective address for a memory instruction.
func (g *Generator) dataAddr(si *staticInstr, rng *rand.Rand) uint64 {
	ws := uint64(g.prof.DataWorkingSet)
	if si.seqStream {
		a := DataBase + g.seqCursor
		g.seqCursor += uint64(g.prof.StrideBytes)
		if g.seqCursor >= ws {
			g.seqCursor = 0
		}
		return a
	}
	hot := uint64(hotRegionBytes)
	if hot > ws {
		hot = ws
	}
	if rng.Float64() < hotFraction {
		// Hot region sits at the top of the address space, clear of the
		// streaming cursors.
		return DataBase + ws + uint64(rng.Int63n(int64(hot)))&^7
	}
	return DataBase + uint64(rng.Int63n(int64(ws)))&^7
}

// fill populates an instruction record from the static program entry.
func (g *Generator) fill(in *isa.Instr, pc uint64, si *staticInstr, rng *rand.Rand) {
	in.Src = si.src
	in.Dest = si.dest
	if si.class.IsMem() {
		in.Addr = g.dataAddr(si, rng)
	}
}

// Next produces the next correct-path instruction; the walk follows the
// ground-truth direction of every branch.
func (g *Generator) Next() *isa.Instr {
	if g.inWrongPath {
		panic("workload: Next called while in wrong-path mode")
	}
	pc := g.pc
	si := g.materialize(pc)
	in := g.newInstr(pc, si.class)
	g.fill(in, pc, si, g.rng)

	next := pc + 4
	if si.class == isa.ClassBranch {
		taken := g.outcome(pc, si)
		in.Taken = taken
		in.Target = si.target
		if taken {
			next = si.target
		}
	}
	if next >= g.codeEnd() {
		next = CodeBase
	}
	g.pc = next
	g.generated++
	return in
}

// StartWrongPath begins producing instructions from target (the mispredicted
// direction's address). If target is 0 (a taken prediction with a BTB miss),
// the walk continues from fallthrough+4 — junk fetch, as in hardware.
func (g *Generator) StartWrongPath(target uint64) {
	if g.inWrongPath {
		panic("workload: StartWrongPath while already in wrong-path mode")
	}
	g.inWrongPath = true
	if target < CodeBase || target >= g.codeEnd() {
		target = CodeBase + (target % uint64(g.prof.CodeFootprint))
		target &^= 3
	}
	g.wpPC = target
}

// NextWrongPath produces the next wrong-path instruction. Wrong-path
// branches follow plausible directions (biased branches their bias, others a
// coin flip) but never mutate ground-truth branch state.
func (g *Generator) NextWrongPath() *isa.Instr {
	if !g.inWrongPath {
		panic("workload: NextWrongPath outside wrong-path mode")
	}
	pc := g.wpPC
	si := g.materialize(pc)
	in := g.newInstr(pc, si.class)
	in.WrongPath = true
	g.fill(in, pc, si, g.wp)

	next := pc + 4
	if si.class == isa.ClassBranch {
		taken := si.biasedTaken
		if si.pattern != patBiased {
			taken = g.wp.Float64() < 0.5
		}
		in.Taken = taken
		in.Target = si.target
		if taken {
			next = si.target
		}
	}
	if next >= g.codeEnd() {
		next = CodeBase
	}
	g.wpPC = next
	g.wrongGen++
	return in
}

// EndWrongPath returns to correct-path mode (the mispredicted branch has
// resolved and the front end was redirected).
func (g *Generator) EndWrongPath() {
	if !g.inWrongPath {
		panic("workload: EndWrongPath outside wrong-path mode")
	}
	g.inWrongPath = false
}

// InWrongPath reports whether the generator is producing wrong-path
// instructions.
func (g *Generator) InWrongPath() bool { return g.inWrongPath }

// CurrentPC returns the address of the instruction the next Next (or
// NextWrongPath) call will produce. The fetch stage uses it for the I-cache
// access that precedes instruction delivery.
func (g *Generator) CurrentPC() uint64 {
	if g.inWrongPath {
		return g.wpPC
	}
	return g.pc
}

// String implements fmt.Stringer.
func (g *Generator) String() string {
	return fmt.Sprintf("workload %s (%s): %d instrs generated, %d wrong-path",
		g.prof.Name, g.prof.Suite, g.generated, g.wrongGen)
}

// UsePool implements PoolUser: subsequent instructions are allocated from p
// (nil reverts to the heap).
func (g *Generator) UsePool(p *isa.Pool) bool {
	g.pool = p
	return true
}

// newInstr allocates one blank instruction record, from the arena when one
// is installed.
func (g *Generator) newInstr(pc uint64, class isa.Class) *isa.Instr {
	if g.pool != nil {
		return g.pool.Get(0, pc, class)
	}
	return isa.NewInstr(0, pc, class)
}

// recentWindow is the depth of the register recency rings: how far back a
// sampled dependency can reach.
const recentWindow = 24

// regRing is a fixed-capacity ring of recently written registers. It
// replaces an append-and-trim slice so the per-instruction path performs no
// allocation: pushing into a full ring overwrites the oldest entry in place.
type regRing struct {
	buf  [recentWindow]isa.Reg
	head int // index of the oldest entry
	n    int
}

func (r *regRing) len() int { return r.n }

// at returns the i-th entry, oldest first.
func (r *regRing) at(i int) isa.Reg {
	i += r.head
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	return r.buf[i]
}

// push appends a register, evicting the oldest entry once full.
func (r *regRing) push(reg isa.Reg) {
	if r.n < len(r.buf) {
		i := r.head + r.n
		if i >= len(r.buf) {
			i -= len(r.buf)
		}
		r.buf[i] = reg
		r.n++
		return
	}
	r.buf[r.head] = reg
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
}

// siChunkLen is the slab growth quantum for static-instruction storage.
const siChunkLen = 256

// newStatic hands out one zeroed static-instruction record from the slab.
// Records are stored in fixed-size chunks (never reallocated), so pointers
// held by the program map stay stable while amortizing allocation to one
// per siChunkLen materializations.
func (g *Generator) newStatic() *staticInstr {
	if n := len(g.siChunks); n == 0 || len(g.siChunks[n-1]) == cap(g.siChunks[n-1]) {
		g.siChunks = append(g.siChunks, make([]staticInstr, 0, siChunkLen))
	}
	c := &g.siChunks[len(g.siChunks)-1]
	*c = append(*c, staticInstr{})
	return &(*c)[len(*c)-1]
}
