package workload

// staticRand is a bit-exact, lazily-seeded reimplementation of
// math/rand.Rand over rand.NewSource: for any seed it produces the same
// Float64/Intn draw sequence as rand.New(rand.NewSource(seed)) — the
// contract TestStaticRandMatchesMathRand pins.
//
// Why it exists: the generator materializes each static instruction from a
// deterministic RNG derived from (seed, pc), so the static program is
// independent of materialization order (see Generator.staticRng). With
// math/rand that means one full rand.NewSource seeding per newly visited pc
// — 1841 LCG steps expanding all 607 lagged-Fibonacci state words, plus a
// ~5 KB allocation — and profiles show it dominating whole-simulation cost,
// because a materialization consumes only a handful of draws.
//
// The trick: the stdlib seeding drives a Lehmer LCG, x_{j+1} = 48271·x_j
// mod 2³¹−1, and state word i is built from LCG elements x_{21+3i},
// x_{22+3i}, x_{23+3i}. Since x_j = 48271^j·x0 mod M, any word can be
// computed directly from a precomputed power table with three modular
// multiplications — so staticRand materializes only the ~dozen words a
// materialization actually reads, two orders of magnitude less arithmetic,
// with zero allocation (the struct is reused across reseedings).
type staticRand struct {
	x0   uint64 // normalized LCG seed
	tap  int    // lagged-Fibonacci read positions, as in rngSource
	feed int

	vec  [lfLen]int64 // lazily computed state words
	have [lfLen]bool
	used []int // indices computed since reset, for O(draws) clearing
}

const (
	lfLen = 607 // lagged-Fibonacci register length (math/rand rngLen)
	lfTap = 273 // feedback tap distance (math/rand rngTap)

	lcgM = 1<<31 - 1 // Lehmer modulus (prime)
	lcgA = 48271     // Lehmer multiplier
)

// lcgPow[j] = 48271^j mod M. The seeding sequence discards 20 elements and
// then consumes three per state word, so the largest exponent needed is
// 20 + 3·607.
var lcgPow [21 + 3*lfLen]uint64

func init() {
	p := uint64(1)
	for j := range lcgPow {
		lcgPow[j] = p
		p = p * lcgA % lcgM
	}
}

// reset reseeds, normalizing exactly like rngSource.Seed. Previously
// computed words are invalidated in O(words used), not O(lfLen).
func (r *staticRand) reset(seed int64) {
	for _, i := range r.used {
		r.have[i] = false
	}
	r.used = r.used[:0]
	seed %= lcgM
	if seed < 0 {
		seed += lcgM
	}
	if seed == 0 {
		seed = 89482311
	}
	r.x0 = uint64(seed)
	r.tap = 0
	r.feed = lfLen - lfTap
}

// word returns state word i, computing it on first use: rngSource.Seed
// builds it from LCG elements x_{21+3i..23+3i} XORed with the cooked table.
func (r *staticRand) word(i int) int64 {
	if r.have[i] {
		return r.vec[i]
	}
	j := 21 + 3*i
	x1 := lcgPow[j] * r.x0 % lcgM
	x2 := lcgPow[j+1] * r.x0 % lcgM
	x3 := lcgPow[j+2] * r.x0 % lcgM
	u := int64(x1)<<40 ^ int64(x2)<<20 ^ int64(x3) ^ lfCooked[i]
	r.vec[i] = u
	r.have[i] = true
	r.used = append(r.used, i)
	return u
}

// uint64 advances the lagged-Fibonacci register one step, exactly as
// rngSource.Uint64 (including the feed-back store, so arbitrarily long draw
// sequences stay exact).
func (r *staticRand) uint64() uint64 {
	r.tap--
	if r.tap < 0 {
		r.tap += lfLen
	}
	r.feed--
	if r.feed < 0 {
		r.feed += lfLen
	}
	x := r.word(r.feed) + r.word(r.tap)
	r.vec[r.feed] = x
	return uint64(x)
}

func (r *staticRand) int63() int64 { return int64(r.uint64() &^ (1 << 63)) }

func (r *staticRand) int31() int32 { return int32(r.int63() >> 32) }

// Float64 replicates rand.Rand.Float64, including its re-draw on a rounded
// 1.0.
func (r *staticRand) Float64() float64 {
	for {
		f := float64(r.int63()) / (1 << 63)
		if f != 1 {
			return f
		}
	}
}

// int31n replicates rand.Rand.Int31n's rejection sampling.
func (r *staticRand) int31n(n int32) int32 {
	if n&(n-1) == 0 {
		return r.int31() & (n - 1)
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := r.int31()
	for v > max {
		v = r.int31()
	}
	return v % n
}

// int63n replicates rand.Rand.Int63n's rejection sampling.
func (r *staticRand) int63n(n int64) int64 {
	if n&(n-1) == 0 {
		return r.int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.int63()
	for v > max {
		v = r.int63()
	}
	return v % n
}

// Intn replicates rand.Rand.Intn's width dispatch.
func (r *staticRand) Intn(n int) int {
	if n <= 0 {
		panic("staticRand: invalid argument to Intn")
	}
	if n <= 1<<31-1 {
		return int(r.int31n(int32(n)))
	}
	return int(r.int63n(int64(n)))
}
