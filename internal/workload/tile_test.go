package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"galsim/internal/isa"
)

// Property: the class tile holds each class in exact largest-remainder
// proportion, for arbitrary (valid) mixes.
func TestTileProportionsProperty(t *testing.T) {
	f := func(b, l, s, fa uint8) bool {
		mix := Mix{
			Branch: float64(b%40) / 200, // up to 0.20
			Load:   float64(l%60) / 200, // up to 0.30
			Store:  float64(s%30) / 200,
			FPAdd:  float64(fa%40) / 200,
		}
		if mix.Sum() > 1 {
			return true // not a valid mix; skip
		}
		tile := buildClassTile(mix, rand.New(rand.NewSource(1)))
		if len(tile) != tileLen {
			return false
		}
		count := map[isa.Class]int{}
		for _, c := range tile {
			count[c]++
		}
		within := func(c isa.Class, frac float64) bool {
			want := int(frac*tileLen + 0.5)
			return count[c] == want
		}
		return within(isa.ClassBranch, mix.Branch) &&
			within(isa.ClassLoad, mix.Load) &&
			within(isa.ClassStore, mix.Store) &&
			within(isa.ClassFPAdd, mix.FPAdd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: any contiguous window of tileLen instructions in the dynamic
// stream of straight-line code has the exact tile mix. (Control flow breaks
// contiguity, so check the static layout directly.)
func TestTileWindowExactness(t *testing.T) {
	p, _ := ByName("gcc")
	g := NewGenerator(p, 3)
	for start := uint64(0); start < 4*tileLen; start += tileLen / 2 {
		branches := 0
		for i := uint64(0); i < tileLen; i++ {
			if g.classAt(CodeBase+4*(start+i)) == isa.ClassBranch {
				branches++
			}
		}
		want := int(p.Mix.Branch*tileLen + 0.5)
		if branches != want {
			t.Errorf("window at %d: %d branches, want %d", start, branches, want)
		}
	}
}

// Dependency distances follow the configured geometric-ish shape: short
// distances dominate, and a profile with larger DepDistP yields shorter
// dependencies on average.
func TestDependencyDistanceOrdering(t *testing.T) {
	avgDist := func(name string) float64 {
		p, _ := ByName(name)
		g := NewGenerator(p, 9)
		// Measure dynamic distance: for each int-ALU src0, how many
		// instructions back was the named register last written?
		lastWrite := map[isa.Reg]int{}
		var sum float64
		var n int
		for i := 0; i < 40_000; i++ {
			in := g.Next()
			if in.Class == isa.ClassIntALU && in.Src[0].Valid() {
				if w, ok := lastWrite[in.Src[0]]; ok {
					sum += float64(i - w)
					n++
				}
			}
			if in.Dest.Valid() {
				lastWrite[in.Dest] = i
			}
		}
		if n == 0 {
			t.Fatalf("%s: no measurable dependencies", name)
		}
		return sum / float64(n)
	}
	serial := avgDist("adpcm") // DepDistP 0.40: short chains
	ilp := avgDist("fpppp")    // DepDistP 0.15: long chains
	if serial >= ilp {
		t.Errorf("adpcm avg dep distance %.1f should be below fpppp %.1f", serial, ilp)
	}
}

// Suites partition the benchmarks.
func TestSuitePartition(t *testing.T) {
	suites := map[string]int{}
	for _, p := range All() {
		suites[p.Suite]++
	}
	if suites["spec95int"] < 6 || suites["spec95fp"] < 3 || suites["mediabench"] < 3 {
		t.Errorf("suite sizes: %v", suites)
	}
}

// The wrong-path stream draws from the same static program: revisiting a PC
// on the wrong path yields the same class as on the correct path.
func TestWrongPathSharesStaticProgram(t *testing.T) {
	p, _ := ByName("li")
	g := NewGenerator(p, 4)
	classOf := map[uint64]isa.Class{}
	for i := 0; i < 20_000; i++ {
		in := g.Next()
		classOf[in.PC] = in.Class
	}
	g.StartWrongPath(CodeBase + 0x40)
	for i := 0; i < 5_000; i++ {
		in := g.NextWrongPath()
		if want, seen := classOf[in.PC]; seen && want != in.Class {
			t.Fatalf("pc %#x decodes as %v on wrong path but %v on correct path",
				in.PC, in.Class, want)
		}
	}
	g.EndWrongPath()
}
