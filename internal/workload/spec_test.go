package workload

import (
	"encoding/json"
	"testing"
)

// inlineProfile is a minimal valid custom phase profile for tests.
func inlineProfile(name string) *Profile {
	return &Profile{
		Name:          name,
		Mix:           Mix{IntALU: 0.5, Load: 0.2, Store: 0.1, Branch: 0.15},
		CodeFootprint: 4 << 10,
		Patterns:      PatternMix{Biased: 0.6, Loop: 0.3, Random: 0.1},
		LoopLength:    16, RandomTakenProb: 0.5,
		DepDistP:       0.3,
		DataWorkingSet: 64 << 10, SeqFrac: 0.5, StrideBytes: 8,
	}
}

func TestProfileSpecValidate(t *testing.T) {
	valid := ProfileSpec{
		Name: "mine",
		Phases: []PhaseSpec{
			{Benchmark: "gcc", Instructions: 1000},
			{Profile: inlineProfile(""), Instructions: 2000},
		},
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*ProfileSpec)
	}{
		{"empty name", func(s *ProfileSpec) { s.Name = "" }},
		{"built-in collision", func(s *ProfileSpec) { s.Name = "gcc" }},
		{"no phases", func(s *ProfileSpec) { s.Phases = nil }},
		{"phase without source", func(s *ProfileSpec) { s.Phases[0].Benchmark = "" }},
		{"phase with both sources", func(s *ProfileSpec) { s.Phases[1].Benchmark = "perl" }},
		{"zero instructions", func(s *ProfileSpec) { s.Phases[0].Instructions = 0 }},
		{"unknown benchmark", func(s *ProfileSpec) { s.Phases[0].Benchmark = "nonesuch" }},
		{"bad inline mix", func(s *ProfileSpec) { s.Phases[1].Profile.Mix.Branch = 2.0 }},
	}
	for _, tc := range cases {
		spec := valid
		spec.Phases = append([]PhaseSpec{}, valid.Phases...)
		p := *valid.Phases[1].Profile
		spec.Phases[1].Profile = &p
		tc.mut(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestNamesReturnsFreshCopies locks in that Names (and All, which backs
// it) hand out fresh sorted slices: a caller scribbling over the result
// must not corrupt the registry for later callers.
func TestNamesReturnsFreshCopies(t *testing.T) {
	first := Names()
	want := append([]string{}, first...)
	for i := range first {
		first[i] = "CLOBBERED"
	}
	again := Names()
	if len(again) != len(want) {
		t.Fatalf("Names() length changed: %d vs %d", len(again), len(want))
	}
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("Names()[%d] = %q after caller mutation, want %q", i, again[i], want[i])
		}
	}
	all := All()
	all[0].Name = "CLOBBERED"
	if All()[0].Name == "CLOBBERED" {
		t.Error("All() returned shared profile storage")
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"name":"x","phasez":[]}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSpecSourceDeterministic(t *testing.T) {
	spec := ProfileSpec{
		Name: "two-phase",
		Phases: []PhaseSpec{
			{Benchmark: "adpcm", Instructions: 500},
			{Benchmark: "fpppp", Instructions: 500},
		},
	}
	streams := make([][]uint64, 2)
	for run := range streams {
		src, err := NewSpecSource(spec, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			in := src.Next()
			streams[run] = append(streams[run], in.PC, uint64(in.Class))
		}
	}
	for i := range streams[0] {
		if streams[0][i] != streams[1][i] {
			t.Fatalf("stream diverged at element %d: %d vs %d", i, streams[0][i], streams[1][i])
		}
	}
}

// TestPhasedGeneratorSwitchesMix drives a two-phase source whose phases
// have extreme, opposite mixes and checks the produced stream actually
// changes character at the phase boundary.
func TestPhasedGeneratorSwitchesMix(t *testing.T) {
	intProf := inlineProfile("intish")
	fpProf := inlineProfile("fpish")
	fpProf.Mix = Mix{IntALU: 0.15, FPAdd: 0.3, FPMul: 0.25, Load: 0.2, Branch: 0.05}
	fpProf.FPLoadFrac = 0.8

	spec := ProfileSpec{
		Name: "int-then-fp",
		Phases: []PhaseSpec{
			{Profile: intProf, Instructions: 2000},
			{Profile: fpProf, Instructions: 2000},
		},
	}
	src, err := NewSpecSource(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	pg, ok := src.(*PhasedGenerator)
	if !ok {
		t.Fatalf("multi-phase spec built %T, want *PhasedGenerator", src)
	}
	countFP := func(n int) (fp int) {
		for i := 0; i < n; i++ {
			if src.Next().Class.IsFP() {
				fp++
			}
		}
		return fp
	}
	fpA := countFP(2000)
	if pg.Phase() != 1 {
		t.Fatalf("after phase-1 quota, Phase() = %d", pg.Phase())
	}
	fpB := countFP(2000)
	if pg.Phase() != 0 || pg.Switches() != 2 {
		t.Fatalf("after phase-2 quota, Phase() = %d, Switches() = %d", pg.Phase(), pg.Switches())
	}
	if fpA != 0 {
		t.Errorf("integer phase produced %d FP instructions", fpA)
	}
	if fpB < 800 {
		t.Errorf("FP phase produced only %d/2000 FP instructions", fpB)
	}
}

// TestSinglePhaseSpecIsPlainGenerator pins the fast path: one phase needs
// no phased wrapper.
func TestSinglePhaseSpecIsPlainGenerator(t *testing.T) {
	src, err := NewSpecSource(ProfileSpec{
		Name:   "solo",
		Phases: []PhaseSpec{{Benchmark: "gcc", Instructions: 1000}},
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*Generator); !ok {
		t.Errorf("single-phase spec built %T, want *Generator", src)
	}
}

// FuzzProfileSpec hammers the JSON profile decoder and validator, then runs
// a short generation burst on every accepted spec: user-supplied profiles
// reach the galsimd service, so acceptance must imply a generator that
// neither panics nor wedges.
func FuzzProfileSpec(f *testing.F) {
	seed, err := json.Marshal(ProfileSpec{
		Name: "seed",
		Phases: []PhaseSpec{
			{Benchmark: "gcc", Instructions: 100},
			{Profile: inlineProfile("p"), Instructions: 100},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"name":"x","phases":[{"benchmark":"adpcm","instructions":1}]}`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			return
		}
		src, err := NewSpecSource(spec, 1)
		if err != nil {
			t.Fatalf("validated spec %q failed to build: %v", spec.Name, err)
		}
		for i := 0; i < 64; i++ {
			if in := src.Next(); in == nil {
				t.Fatal("generator produced nil instruction")
			}
		}
		src.StartWrongPath(src.CurrentPC() + 16)
		for i := 0; i < 8; i++ {
			src.NextWrongPath()
		}
		src.EndWrongPath()
	})
}
