package workload

import (
	"fmt"

	"galsim/internal/isa"
)

// PhasedGenerator cycles through a sequence of per-phase Generators: phase i
// supplies quota[i] correct-path instructions, then the stream moves to
// phase i+1 (wrapping after the last phase), like a program moving between
// computation phases. Each phase keeps its own persistent Generator, so a
// revisited phase resumes its static program — the same loops and data
// structures — rather than re-entering fresh code.
//
// Phase switches happen only between correct-path instructions; wrong-path
// excursions are delegated wholesale to whichever phase is current when the
// front end enters wrong-path mode, so a single generator always owns an
// entire excursion.
type PhasedGenerator struct {
	name   string
	profs  []Profile
	quotas []uint64
	seed   int64

	gens     []*Generator // lazily constructed, persistent per phase
	idx      int
	curCount uint64 // correct-path instructions produced in the current phase

	pool *isa.Pool // propagated to each phase generator (see PoolUser)

	generated uint64
	switches  uint64
}

// UsePool implements PoolUser, propagating the arena to every phase
// generator — both the already-constructed ones and those still to be built
// lazily by cur.
func (p *PhasedGenerator) UsePool(pool *isa.Pool) bool {
	p.pool = pool
	for _, g := range p.gens {
		if g != nil {
			g.UsePool(pool)
		}
	}
	return true
}

// NewPhasedGenerator builds a phased source. The profiles must already be
// validated (NewSpecSource does); quotas must be positive and the two
// slices equal-length, or the constructor panics.
func NewPhasedGenerator(name string, profs []Profile, quotas []uint64, seed int64) *PhasedGenerator {
	if len(profs) == 0 || len(profs) != len(quotas) {
		panic(fmt.Sprintf("workload: phased generator wants matching non-empty profiles/quotas, got %d/%d",
			len(profs), len(quotas)))
	}
	for i, q := range quotas {
		if q == 0 {
			panic(fmt.Sprintf("workload: phased generator phase %d has zero quota", i))
		}
	}
	return &PhasedGenerator{name: name, profs: profs, quotas: quotas, seed: seed,
		gens: make([]*Generator, len(profs))}
}

// cur returns the current phase's generator, constructing it on first use.
// Phase seeds are decorrelated so two phases sharing a profile still walk
// distinct static programs.
func (p *PhasedGenerator) cur() *Generator {
	if p.gens[p.idx] == nil {
		g := NewGenerator(p.profs[p.idx], p.seed+int64(p.idx)*0x9E3779B9)
		g.UsePool(p.pool)
		p.gens[p.idx] = g
	}
	return p.gens[p.idx]
}

// Next produces the next correct-path instruction, advancing to the next
// phase once the current one's quota is exhausted.
func (p *PhasedGenerator) Next() *isa.Instr {
	g := p.cur()
	in := g.Next()
	p.generated++
	p.curCount++
	if p.curCount >= p.quotas[p.idx] {
		p.curCount = 0
		p.idx = (p.idx + 1) % len(p.profs)
		p.switches++
	}
	return in
}

// NextWrongPath produces the next wrong-path instruction from the phase the
// excursion started in.
func (p *PhasedGenerator) NextWrongPath() *isa.Instr { return p.cur().NextWrongPath() }

// StartWrongPath enters wrong-path mode at target.
func (p *PhasedGenerator) StartWrongPath(target uint64) { p.cur().StartWrongPath(target) }

// EndWrongPath returns to correct-path mode.
func (p *PhasedGenerator) EndWrongPath() { p.cur().EndWrongPath() }

// InWrongPath reports whether the source is in wrong-path mode.
func (p *PhasedGenerator) InWrongPath() bool { return p.cur().InWrongPath() }

// CurrentPC returns the address of the instruction the next produce call
// will deliver.
func (p *PhasedGenerator) CurrentPC() uint64 { return p.cur().CurrentPC() }

// Phase returns the current phase index.
func (p *PhasedGenerator) Phase() int { return p.idx }

// Switches returns the number of phase transitions so far.
func (p *PhasedGenerator) Switches() uint64 { return p.switches }

// String implements fmt.Stringer.
func (p *PhasedGenerator) String() string {
	return fmt.Sprintf("workload %s: %d phases, %d instrs generated, %d switches",
		p.name, len(p.profs), p.generated, p.switches)
}
