package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"galsim/internal/isa"
	"galsim/internal/workload"
)

// buildTrace encodes a header plus the given events via the Writer.
func buildTrace(t *testing.T, meta Meta, write func(*Writer)) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, meta)
	if err != nil {
		t.Fatal(err)
	}
	write(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readAll(t *testing.T, data []byte) (Meta, []Record) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	return r.Meta(), recs
}

func TestRoundTripRecords(t *testing.T) {
	meta := Meta{Name: "unit", Instructions: 123, SpecJSON: []byte(`{"benchmark":"unit"}`)}
	ir := func(class isa.Class, pc uint64) *isa.Instr { return isa.NewInstr(0, pc, class) }

	load := ir(isa.ClassLoad, 0x400010)
	load.Dest = isa.Reg{File: isa.RegFP, Index: 7}
	load.Src[0] = isa.Reg{File: isa.RegInt, Index: 3}
	load.Addr = 0x1000_0008

	br := ir(isa.ClassBranch, 0x400014)
	br.Src[0] = isa.Reg{File: isa.RegInt, Index: 31}
	br.Taken = true
	br.Target = 0x400000 // backward branch: negative delta

	wp := ir(isa.ClassStore, 0x400018)
	wp.WrongPath = true
	wp.Src[0] = isa.Reg{File: isa.RegInt, Index: 1}
	wp.Src[1] = isa.Reg{File: isa.RegFP, Index: 31}
	wp.Addr = 0x0FFF_FFF8 // address below the previous one: negative delta

	data := buildTrace(t, meta, func(w *Writer) {
		w.Instr(load)
		w.Instr(br)
		w.StartWrongPath(0x400018)
		w.Instr(wp)
		w.EndWrongPath(0x40001C)
	})

	gotMeta, recs := readAll(t, data)
	if gotMeta.Name != meta.Name || gotMeta.Instructions != meta.Instructions ||
		!bytes.Equal(gotMeta.SpecJSON, meta.SpecJSON) {
		t.Errorf("meta round trip: got %+v want %+v", gotMeta, meta)
	}
	want := []Record{
		{Kind: KindInstr, Class: isa.ClassLoad, PC: load.PC, Dest: load.Dest, Src: load.Src, Addr: load.Addr},
		{Kind: KindInstr, Class: isa.ClassBranch, PC: br.PC, Src: br.Src, Taken: true, Target: br.Target},
		{Kind: KindStartWrongPath, Target: 0x400018},
		{Kind: KindInstr, WrongPath: true, Class: isa.ClassStore, PC: wp.PC, Src: wp.Src, Addr: wp.Addr},
		{Kind: KindEndWrongPath, Target: 0x40001C},
	}
	if !reflect.DeepEqual(recs, want) {
		t.Errorf("records round trip:\ngot  %+v\nwant %+v", recs, want)
	}
}

func TestReaderRejectsMalformed(t *testing.T) {
	valid := buildTrace(t, Meta{Name: "x"}, func(w *Writer) {
		in := isa.NewInstr(0, 0x400000, isa.ClassIntALU)
		w.Instr(in)
	})
	cases := map[string][]byte{
		"empty":          {},
		"short magic":    valid[:2],
		"bad magic":      append([]byte("NOPE"), valid[4:]...),
		"bad version":    append(append([]byte{}, valid[:4]...), append([]byte{99}, valid[5:]...)...),
		"truncated meta": valid[:6],
	}
	for name, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: NewReader accepted malformed input", name)
		}
	}
	// Truncating anywhere inside the record region must produce an error
	// from Next, never a panic or a silent success.
	r, err := NewReader(bytes.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("valid record failed: %v", err)
	}
	headerLen := len(buildTrace(t, Meta{Name: "x"}, func(*Writer) {}))
	for cut := headerLen + 1; cut < len(valid); cut++ {
		r, err := NewReader(bytes.NewReader(valid[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header failed: %v", cut, err)
		}
		if _, err := r.Next(); err == nil || err == io.EOF {
			t.Errorf("cut %d: truncated record gave err=%v, want decode error", cut, err)
		}
	}
}

func TestParseRejectsEmptyStream(t *testing.T) {
	data := buildTrace(t, Meta{Name: "empty"}, func(w *Writer) {})
	if _, err := Parse(data); err == nil {
		t.Error("Parse accepted a trace with no correct-path instructions")
	}
}

// driveSource exercises an InstrSource with a fixed call script, returning
// every produced instruction (correct and wrong path) in order.
func driveSource(src workload.InstrSource) []isa.Instr {
	var out []isa.Instr
	grab := func(in *isa.Instr) { out = append(out, *in) }
	for i := 0; i < 200; i++ {
		grab(src.Next())
	}
	src.StartWrongPath(src.CurrentPC() + 64)
	for i := 0; i < 30; i++ {
		grab(src.NextWrongPath())
	}
	src.EndWrongPath()
	for i := 0; i < 100; i++ {
		grab(src.Next())
	}
	src.StartWrongPath(0)
	grab(src.NextWrongPath())
	src.EndWrongPath()
	for i := 0; i < 50; i++ {
		grab(src.Next())
	}
	return out
}

// TestRecorderReplayEquivalence drives a generator through a recorder, then
// replays the trace with the same call script and requires an identical
// instruction stream — the unit-level version of the end-to-end round-trip
// determinism test in the galsim package.
func TestRecorderReplayEquivalence(t *testing.T) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Name: "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(workload.NewGenerator(prof, 1), w)
	want := driveSource(rec)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got := driveSource(NewReplaySource(tr))
	if len(got) != len(want) {
		t.Fatalf("replay produced %d instructions, recorded %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("instruction %d diverged:\nrecorded %+v\nreplayed %+v", i, want[i], got[i])
		}
	}
}

// TestReplayWrapsShortTrace checks that a replay outliving its trace wraps
// to the beginning instead of running dry.
func TestReplayWrapsShortTrace(t *testing.T) {
	prof, err := workload.ByName("adpcm")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Name: "adpcm"})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(workload.NewGenerator(prof, 1), w)
	first := *rec.Next()
	for i := 0; i < 9; i++ {
		rec.Next()
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	src := NewReplaySource(tr)
	for i := 0; i < 10; i++ {
		src.Next()
	}
	if got := *src.Next(); got != first {
		t.Errorf("wrapped replay instr = %+v, want the stream's first %+v", got, first)
	}
	if src.Wrapped() != 1 {
		t.Errorf("Wrapped() = %d, want 1", src.Wrapped())
	}
}

func TestFileDigestIsContentAddressed(t *testing.T) {
	dir := t.TempDir()
	data := buildTrace(t, Meta{Name: "x"}, func(w *Writer) {
		w.Instr(isa.NewInstr(0, 0x400000, isa.ClassIntALU))
	})
	a := filepath.Join(dir, "a.trace")
	b := filepath.Join(dir, "sub-dir-b.trace")
	for _, p := range []string{a, b} {
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	da, err := FileDigest(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := FileDigest(b)
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Errorf("equal contents hashed differently: %s vs %s", da, db)
	}
	if len(da) != 64 {
		t.Errorf("digest %q is not hex SHA-256", da)
	}
}
