package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"galsim/internal/isa"
)

// FuzzReader feeds arbitrary bytes to the trace decoder: malformed headers,
// truncated records and corrupt varints must all surface as errors — never
// as panics, hangs, or unbounded allocations. The decoder fronts untrusted
// files (and, through Parse, everything the replay path trusts), so this is
// its security boundary.
func FuzzReader(f *testing.F) {
	// Seed with a well-formed trace so mutations explore the record region,
	// not just the magic check.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Name: "seed", Instructions: 42, SpecJSON: []byte(`{"benchmark":"seed"}`)})
	if err != nil {
		f.Fatal(err)
	}
	load := isa.NewInstr(0, 0x400000, isa.ClassLoad)
	load.Dest = isa.Reg{File: isa.RegInt, Index: 5}
	load.Src[0] = isa.Reg{File: isa.RegInt, Index: 3}
	load.Addr = 0x1000_0000
	w.Instr(load)
	br := isa.NewInstr(0, 0x400004, isa.ClassBranch)
	br.Taken = true
	br.Target = 0x400040
	w.Instr(br)
	w.StartWrongPath(0x400008)
	wp := isa.NewInstr(0, 0x400008, isa.ClassIntALU)
	wp.WrongPath = true
	w.Instr(wp)
	w.EndWrongPath(0x40000C)
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("GTRC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		// Decode every record; the loop is bounded because each Next call
		// consumes at least the tag byte of the finite input.
		for {
			_, err := r.Next()
			if errors.Is(err, io.EOF) || err != nil {
				break
			}
		}
		// Parse layers stream-level validation on top; it must be equally
		// panic-free (and agree with the raw scan on well-formedness).
		_, _ = Parse(data)
	})
}
