package trace

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// TestReadsVersion1Header: traces recorded before the machine-digest field
// (format version 1) must keep replaying; their digest reads as empty, which
// provenance checks treat as "unknown, allow".
func TestReadsVersion1Header(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(1) // version 1: header ends after the spec block
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], 1234)]) // instructions
	name := "oldtrace"
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(name)))])
	buf.WriteString(name)
	spec := `{"benchmark":"gcc"}`
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(spec)))])
	buf.WriteString(spec)

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Meta()
	if m.Name != name || m.Instructions != 1234 || string(m.SpecJSON) != spec {
		t.Fatalf("meta = %+v", m)
	}
	if m.MachineDigest != "" {
		t.Errorf("v1 trace reports a machine digest %q", m.MachineDigest)
	}
}

// TestCurrentHeaderCarriesDigest: version 2 writes round-trip the machine
// digest; versions above the current one are rejected.
func TestCurrentHeaderCarriesDigest(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Name: "x", Instructions: 7, MachineDigest: "abc123"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Meta().MachineDigest; got != "abc123" {
		t.Fatalf("digest = %q", got)
	}

	future := append([]byte(nil), buf.Bytes()...)
	future[4] = Version + 1
	if _, err := NewReader(bytes.NewReader(future)); err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("future version error = %v", err)
	}
}
