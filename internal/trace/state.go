package trace

import (
	"encoding/json"
	"fmt"

	"galsim/internal/workload"
)

// ReplayState is a ReplaySource's snapshot form. The stream position is the
// number of records consumed since the last rewind — the lookahead buffer
// holds only peeked-not-consumed records, which a restored source re-decodes
// on demand, so it needs no serialization.
type ReplayState struct {
	Discarded uint64 `json:"discarded"`
	Wrapped   uint64 `json:"wrapped"`
	Served    uint64 `json:"served"`
	InWP      bool   `json:"in_wp,omitempty"`
	Synth     bool   `json:"synth,omitempty"`
	SynthPC   uint64 `json:"synth_pc,omitempty"`
	WpNext    uint64 `json:"wp_next,omitempty"`
}

var _ workload.Snapshotter = (*ReplaySource)(nil)

// CaptureSourceState implements workload.Snapshotter.
func (s *ReplaySource) CaptureSourceState() (json.RawMessage, error) {
	return json.Marshal(ReplayState{
		Discarded: s.discarded,
		Wrapped:   s.wrapped,
		Served:    s.served,
		InWP:      s.inWP,
		Synth:     s.synth,
		SynthPC:   s.synthPC,
		WpNext:    s.wpNext,
	})
}

// RestoreSourceState implements workload.Snapshotter: it fast-forwards this
// freshly constructed replay (of the same trace the capture came from) to
// the captured position.
func (s *ReplaySource) RestoreSourceState(raw json.RawMessage) error {
	var st ReplayState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("trace: decoding replay state: %w", err)
	}
	if s.served != 0 || s.discarded != 0 || s.inWP {
		return fmt.Errorf("trace: restore into replay that has already served instructions")
	}
	for n := uint64(0); n < st.Discarded; n++ {
		if _, ok := s.peekAt(0); !ok {
			return fmt.Errorf("trace: restored position %d past end of stream (trace mismatch?)", st.Discarded)
		}
		s.buf = s.buf[1:]
	}
	s.discarded = st.Discarded
	s.wrapped = st.Wrapped
	s.served = st.Served
	s.inWP = st.InWP
	s.synth = st.Synth
	s.synthPC = st.SynthPC
	s.wpNext = st.WpNext
	return nil
}
