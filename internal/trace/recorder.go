package trace

import (
	"galsim/internal/isa"
	"galsim/internal/workload"
)

// Recorder is a capture tap: it wraps any workload.InstrSource, delegates
// every call, and writes the delivered stream as trace records, so a run is
// recorded exactly as the pipeline consumed it — including wrong-path
// excursions and their boundaries.
type Recorder struct {
	src  workload.InstrSource
	w    *Writer
	inWP bool
}

var (
	_ workload.InstrSource = (*Recorder)(nil)
	_ workload.PoolUser    = (*Recorder)(nil)
)

// UsePool implements workload.PoolUser by forwarding the arena to the
// wrapped source when it supports pooling, reporting false — pooling off —
// when it does not, so the pipeline never recycles records a non-pooling
// source heap-allocated. The recorder itself retains no *Instr — every
// record is serialized before the instruction is handed to the pipeline —
// so recording composes safely with arena recycling.
func (r *Recorder) UsePool(p *isa.Pool) bool {
	if pu, ok := r.src.(workload.PoolUser); ok {
		return pu.UsePool(p)
	}
	return false
}

// NewRecorder taps src, writing records through w.
func NewRecorder(src workload.InstrSource, w *Writer) *Recorder {
	return &Recorder{src: src, w: w}
}

// Next delegates and records a correct-path instruction.
func (r *Recorder) Next() *isa.Instr {
	in := r.src.Next()
	r.w.Instr(in)
	return in
}

// NextWrongPath delegates and records a wrong-path instruction.
func (r *Recorder) NextWrongPath() *isa.Instr {
	in := r.src.NextWrongPath()
	r.w.Instr(in)
	return in
}

// StartWrongPath delegates, then records the excursion boundary with the
// source's *normalized* entry pc (CurrentPC after entering wrong-path
// mode), so replay reproduces the exact fetch addresses the I-cache saw.
func (r *Recorder) StartWrongPath(target uint64) {
	r.src.StartWrongPath(target)
	r.w.StartWrongPath(r.src.CurrentPC())
	r.inWP = true
}

// EndWrongPath records the excursion boundary with the wrong-path fetch pc
// pending at redirect time (queried before delegating, while the source is
// still in wrong-path mode), then delegates.
func (r *Recorder) EndWrongPath() {
	r.w.EndWrongPath(r.src.CurrentPC())
	r.src.EndWrongPath()
	r.inWP = false
}

// InWrongPath delegates.
func (r *Recorder) InWrongPath() bool { return r.src.InWrongPath() }

// CurrentPC delegates.
func (r *Recorder) CurrentPC() uint64 { return r.src.CurrentPC() }

// Close balances a dangling excursion (a run that ended mid-wrong-path)
// so every start record has a matching end, then flushes the writer and
// reports the stream's first error.
func (r *Recorder) Close() error {
	if r.inWP {
		r.w.EndWrongPath(r.src.CurrentPC())
		r.inWP = false
	}
	return r.w.Flush()
}
