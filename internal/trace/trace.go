// Package trace records and replays workload instruction streams: the
// record/replay subsystem that turns any simulation run into a portable,
// re-runnable artifact.
//
// A trace captures the exact dynamic stream an instruction source delivered
// to the pipeline front end — correct-path instructions, wrong-path
// excursion boundaries, and the wrong-path instructions fetched inside them
// — so replaying it through an identically configured machine reproduces
// the original run's results bit-for-bit, and replaying it through a
// different machine answers "what would this exact program have done
// there". Recording taps the workload.InstrSource interface (Recorder), so
// every source — built-in benchmark, user-defined phased profile, or even
// another trace — can be captured.
//
// # Format
//
// A trace is a byte stream: a fixed header followed by variable-length
// records. All integers are unsigned varints (encoding/binary); signed
// quantities are zigzag-coded. Program counters and memory addresses are
// delta-coded against the previous record's values, so the common cases
// (pc+4, sequential streams) cost one byte.
//
//	header:
//	  magic   "GTRC" (4 bytes)
//	  version byte (currently 2; version 1 is still read)
//	  uvarint committed-instruction target of the recorded run
//	  uvarint name length, name bytes (workload name)
//	  uvarint spec length, spec bytes (canonical RunSpec JSON, provenance)
//	  uvarint digest length, digest bytes (canonical machine-topology
//	          digest; version >= 2 only)
//
//	record:
//	  tag byte: bits 0-1 kind (0 instr, 1 start-wrong-path, 2 end-wrong-path)
//	            bit 2 wrong-path flag, bits 3-7 instruction class
//	  kind instr:
//	    zigzag varint pc delta (vs previous instr record)
//	    dest, src0, src1 register bytes (file in bits 5-6, index in bits 0-4)
//	    memory classes: zigzag varint address delta (vs previous memory instr)
//	    branch class:   flags byte (bit 0 = taken), zigzag varint target-pc
//	  kind start-wrong-path:
//	    uvarint wrong-path entry pc (the source's normalized fetch address)
//	  kind end-wrong-path:
//	    uvarint next wrong-path fetch pc at redirect time (what CurrentPC
//	    returned while the front end stalled past the last fetched
//	    instruction; replay must reproduce it for I-cache behaviour to
//	    match exactly)
//
// Decoding is strictly sequential (the deltas carry running state), which
// keeps both the Reader and the fuzz surface simple.
package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"

	"galsim/internal/isa"
)

// Version is the current trace format version. Version 2 added the
// machine-topology digest to the header; version 1 traces (no digest) are
// still read.
const Version = 2

var magic = [4]byte{'G', 'T', 'R', 'C'}

// Limits on header fields; traces are untrusted input.
const (
	maxNameLen   = 1 << 12
	maxSpecLen   = 1 << 20
	maxDigestLen = 128
)

// Kind discriminates trace records.
type Kind uint8

// Record kinds.
const (
	KindInstr Kind = iota
	KindStartWrongPath
	KindEndWrongPath
	numKinds
)

// Meta is the trace header.
type Meta struct {
	// Name is the recorded workload's name (benchmark or profile-spec name).
	Name string
	// Instructions is the committed-instruction target of the recording run,
	// the natural replay length.
	Instructions uint64
	// SpecJSON is the canonical RunSpec of the recording run, for provenance
	// and inspection; replay does not interpret it.
	SpecJSON []byte
	// MachineDigest is the canonical content digest of the recording run's
	// machine topology (see internal/machine). Replays that do not choose a
	// machine explicitly are checked against it, so a trace recorded on one
	// topology cannot silently replay on another. Empty in version 1 traces.
	MachineDigest string
}

// Record is one decoded trace event.
type Record struct {
	Kind      Kind
	WrongPath bool
	Class     isa.Class
	PC        uint64
	Dest      isa.Reg
	Src       [2]isa.Reg
	Addr      uint64 // memory classes only
	Taken     bool   // branch class only
	// Target is the branch target for branch instructions; for the
	// excursion boundary kinds it is the source's fetch pc — the wrong-path
	// entry pc (KindStartWrongPath) or the next wrong-path pc pending at
	// redirect time (KindEndWrongPath).
	Target uint64
}

// Instr materializes a fresh pipeline instruction from an instr record.
func (r Record) Instr() *isa.Instr {
	in := isa.NewInstr(0, r.PC, r.Class)
	r.fillInstr(in)
	return in
}

// fillInstr copies the record's payload onto a freshly initialized
// instruction (heap- or arena-allocated).
func (r Record) fillInstr(in *isa.Instr) {
	in.Dest = r.Dest
	in.Src = r.Src
	in.Addr = r.Addr
	in.Taken = r.Taken
	in.Target = r.Target
	in.WrongPath = r.WrongPath
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// regByte encodes a register name in one byte.
func regByte(r isa.Reg) (byte, error) {
	if r.File > isa.RegFP || r.Index >= 32 {
		return 0, fmt.Errorf("trace: unencodable register %v", r)
	}
	return byte(r.File)<<5 | r.Index, nil
}

// decodeReg is regByte's inverse.
func decodeReg(b byte) (isa.Reg, error) {
	file, index := isa.RegFile(b>>5), b&0x1F
	if file > isa.RegFP {
		return isa.Reg{}, fmt.Errorf("trace: bad register byte %#x", b)
	}
	if file == isa.RegNone && index != 0 {
		return isa.Reg{}, fmt.Errorf("trace: bad register byte %#x", b)
	}
	return isa.Reg{File: file, Index: index}, nil
}

// Writer encodes trace records onto an io.Writer. Errors are sticky: the
// first failure is remembered and every later call is a no-op, so the
// per-instruction hot path need not check anything; callers observe the
// outcome once, at Flush.
type Writer struct {
	w        *bufio.Writer
	err      error
	prevPC   uint64
	prevAddr uint64
	buf      []byte
}

// NewWriter writes the header and returns an encoder for the record stream.
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	if len(meta.Name) > maxNameLen {
		return nil, fmt.Errorf("trace: workload name of %d bytes exceeds the %d limit", len(meta.Name), maxNameLen)
	}
	if len(meta.SpecJSON) > maxSpecLen {
		return nil, fmt.Errorf("trace: spec of %d bytes exceeds the %d limit", len(meta.SpecJSON), maxSpecLen)
	}
	if len(meta.MachineDigest) > maxDigestLen {
		return nil, fmt.Errorf("trace: machine digest of %d bytes exceeds the %d limit", len(meta.MachineDigest), maxDigestLen)
	}
	tw := &Writer{w: bufio.NewWriter(w), buf: make([]byte, 0, 64)}
	tw.w.Write(magic[:])    //nolint:errcheck // sticky via Flush
	tw.w.WriteByte(Version) //nolint:errcheck
	tw.uvarint(meta.Instructions)
	tw.uvarint(uint64(len(meta.Name)))
	tw.w.WriteString(meta.Name) //nolint:errcheck
	tw.uvarint(uint64(len(meta.SpecJSON)))
	tw.w.Write(meta.SpecJSON) //nolint:errcheck
	tw.uvarint(uint64(len(meta.MachineDigest)))
	tw.w.WriteString(meta.MachineDigest) //nolint:errcheck
	if err := tw.w.Flush(); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return tw, nil
}

func (w *Writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf[:0], v)
	w.w.Write(w.buf) //nolint:errcheck // sticky via Flush
}

// Instr appends one instruction record.
func (w *Writer) Instr(in *isa.Instr) {
	if w.err != nil {
		return
	}
	tag := byte(KindInstr) | byte(in.Class)<<3
	if in.WrongPath {
		tag |= 1 << 2
	}
	w.w.WriteByte(tag) //nolint:errcheck
	w.uvarint(zigzag(int64(in.PC - w.prevPC)))
	w.prevPC = in.PC
	for _, r := range []isa.Reg{in.Dest, in.Src[0], in.Src[1]} {
		b, err := regByte(r)
		if err != nil {
			w.err = err
			return
		}
		w.w.WriteByte(b) //nolint:errcheck
	}
	if in.Class.IsMem() {
		w.uvarint(zigzag(int64(in.Addr - w.prevAddr)))
		w.prevAddr = in.Addr
	}
	if in.Class == isa.ClassBranch {
		var flags byte
		if in.Taken {
			flags |= 1
		}
		w.w.WriteByte(flags) //nolint:errcheck
		w.uvarint(zigzag(int64(in.Target - in.PC)))
	}
}

// StartWrongPath appends an excursion-start record carrying the source's
// normalized wrong-path entry pc.
func (w *Writer) StartWrongPath(entryPC uint64) {
	if w.err != nil {
		return
	}
	w.w.WriteByte(byte(KindStartWrongPath)) //nolint:errcheck
	w.uvarint(entryPC)
}

// EndWrongPath appends an excursion-end record carrying the wrong-path
// fetch pc that was pending when the redirect arrived.
func (w *Writer) EndWrongPath(nextPC uint64) {
	if w.err != nil {
		return
	}
	w.w.WriteByte(byte(KindEndWrongPath)) //nolint:errcheck
	w.uvarint(nextPC)
}

// Flush drains buffered records and reports the first error encountered
// anywhere in the stream's life.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// Reader decodes a trace stream sequentially: NewReader parses the header,
// Next returns records until io.EOF. Any malformed input yields an error,
// never a panic — traces are untrusted bytes.
type Reader struct {
	r        *bufio.Reader
	meta     Meta
	prevPC   uint64
	prevAddr uint64
}

// NewReader parses the header of a trace stream.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", noEOF(err))
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q (not a trace file)", m)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", noEOF(err))
	}
	if ver < 1 || ver > Version {
		return nil, fmt.Errorf("trace: unsupported version %d (want 1..%d)", ver, Version)
	}
	tr := &Reader{r: br}
	if tr.meta.Instructions, err = binary.ReadUvarint(br); err != nil {
		return nil, fmt.Errorf("trace: reading instruction count: %w", noEOF(err))
	}
	name, err := readBlock(br, maxNameLen, "workload name")
	if err != nil {
		return nil, err
	}
	tr.meta.Name = string(name)
	if tr.meta.SpecJSON, err = readBlock(br, maxSpecLen, "spec"); err != nil {
		return nil, err
	}
	if ver >= 2 {
		digest, err := readBlock(br, maxDigestLen, "machine digest")
		if err != nil {
			return nil, err
		}
		tr.meta.MachineDigest = string(digest)
	}
	return tr, nil
}

// readBlock reads a length-prefixed byte block with a size cap.
func readBlock(br *bufio.Reader, maxLen int, what string) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading %s length: %w", what, noEOF(err))
	}
	if n > uint64(maxLen) {
		return nil, fmt.Errorf("trace: %s of %d bytes exceeds the %d limit", what, n, maxLen)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, fmt.Errorf("trace: reading %s: %w", what, noEOF(err))
	}
	return b, nil
}

// noEOF converts io.EOF to io.ErrUnexpectedEOF: inside a header or record,
// running out of bytes is truncation, not a clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Meta returns the parsed header.
func (r *Reader) Meta() Meta { return r.meta }

// Next decodes the next record. It returns io.EOF at a clean record
// boundary and a descriptive error on malformed input.
func (r *Reader) Next() (Record, error) {
	tag, err := r.r.ReadByte()
	if err == io.EOF {
		return Record{}, io.EOF
	}
	if err != nil {
		return Record{}, fmt.Errorf("trace: reading record tag: %w", err)
	}
	kind := Kind(tag & 3)
	switch kind {
	case KindInstr:
		return r.readInstr(tag)
	case KindStartWrongPath, KindEndWrongPath:
		pc, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Record{}, fmt.Errorf("trace: reading wrong-path pc: %w", noEOF(err))
		}
		return Record{Kind: kind, Target: pc}, nil
	default:
		return Record{}, fmt.Errorf("trace: unknown record kind %d", kind)
	}
}

func (r *Reader) readInstr(tag byte) (Record, error) {
	rec := Record{Kind: KindInstr, WrongPath: tag&(1<<2) != 0, Class: isa.Class(tag >> 3)}
	if int(rec.Class) >= isa.NumClasses {
		return Record{}, fmt.Errorf("trace: unknown instruction class %d", rec.Class)
	}
	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: reading pc delta: %w", noEOF(err))
	}
	rec.PC = r.prevPC + uint64(unzigzag(delta))
	r.prevPC = rec.PC
	var regs [3]isa.Reg
	for i := range regs {
		b, err := r.r.ReadByte()
		if err != nil {
			return Record{}, fmt.Errorf("trace: reading registers: %w", noEOF(err))
		}
		if regs[i], err = decodeReg(b); err != nil {
			return Record{}, err
		}
	}
	rec.Dest, rec.Src[0], rec.Src[1] = regs[0], regs[1], regs[2]
	if rec.Class.IsMem() {
		d, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Record{}, fmt.Errorf("trace: reading address delta: %w", noEOF(err))
		}
		rec.Addr = r.prevAddr + uint64(unzigzag(d))
		r.prevAddr = rec.Addr
	}
	if rec.Class == isa.ClassBranch {
		flags, err := r.r.ReadByte()
		if err != nil {
			return Record{}, fmt.Errorf("trace: reading branch flags: %w", noEOF(err))
		}
		rec.Taken = flags&1 != 0
		d, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Record{}, fmt.Errorf("trace: reading branch target: %w", noEOF(err))
		}
		rec.Target = rec.PC + uint64(unzigzag(d))
	}
	return rec, nil
}

// FileDigest returns the hex SHA-256 of a file's contents: the trace's
// content address, used by the campaign cache key so renaming or copying a
// trace never changes the identity of the runs it drives.
func FileDigest(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("trace: hashing %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ReadMeta parses just the header of a trace file: the cheap validity check
// used by spec validation.
func ReadMeta(path string) (Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return Meta{}, fmt.Errorf("%s: %w", path, err)
	}
	return r.Meta(), nil
}
