package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"

	"galsim/internal/isa"
	"galsim/internal/workload"
)

// Trace is a fully loaded, validated trace held in memory in its compact
// encoded form (~8 bytes per instruction); replay decodes it on the fly.
type Trace struct {
	Meta Meta
	// Stats summarizes the record stream (gathered by the Load-time
	// validation scan).
	Stats ScanStats

	raw []byte // the complete encoded file
}

// ScanStats summarizes a trace's record stream.
type ScanStats struct {
	Records      uint64
	Instrs       uint64 // correct-path instructions
	WrongPath    uint64 // wrong-path instructions
	Excursions   uint64 // wrong-path excursion count
	Branches     uint64 // correct-path branches
	BranchTaken  uint64 // taken correct-path branches
	MemOps       uint64 // correct-path loads + stores
	ByClass      [isa.NumClasses]uint64
	MinPC, MaxPC uint64
}

// Scan decodes an entire record stream, accumulating summary statistics.
// It is Load's validation pass and the galsim-trace CLI's stats source.
func Scan(r *Reader) (ScanStats, error) {
	var s ScanStats
	s.MinPC = ^uint64(0)
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return s, err
		}
		s.Records++
		switch rec.Kind {
		case KindStartWrongPath:
			s.Excursions++
		case KindInstr:
			if rec.PC < s.MinPC {
				s.MinPC = rec.PC
			}
			if rec.PC > s.MaxPC {
				s.MaxPC = rec.PC
			}
			if rec.WrongPath {
				s.WrongPath++
				continue
			}
			s.Instrs++
			s.ByClass[rec.Class]++
			switch {
			case rec.Class == isa.ClassBranch:
				s.Branches++
				if rec.Taken {
					s.BranchTaken++
				}
			case rec.Class.IsMem():
				s.MemOps++
			}
		}
	}
	if s.Instrs == 0 {
		s.MinPC = 0
	}
	return s, nil
}

// Load reads and fully validates a trace file: the header parses, every
// record decodes, and the stream contains at least one correct-path
// instruction (a replay must have something to fetch).
func Load(path string) (*Trace, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(raw)
}

// Digest returns the trace's hex SHA-256 content address.
func (t *Trace) Digest() string {
	sum := sha256.Sum256(t.raw)
	return hex.EncodeToString(sum[:])
}

// Parse validates an in-memory encoded trace.
func Parse(raw []byte) (*Trace, error) {
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	stats, err := Scan(r)
	if err != nil {
		return nil, err
	}
	if stats.Instrs == 0 {
		return nil, fmt.Errorf("trace: no correct-path instructions; nothing to replay")
	}
	return &Trace{Meta: r.Meta(), Stats: stats, raw: raw}, nil
}

// synthPCStep spaces synthetic wrong-path instructions like real code.
const synthPCStep = 4

// ReplaySource replays a loaded trace as a workload.InstrSource. Driving an
// identically configured machine, the replay reproduces the recorded run
// exactly: the pipeline's calls arrive in the same order the recorder
// logged them, so the source just steps through the record stream.
//
// Two tolerance mechanisms make replay robust on a *different* machine
// configuration, where the pipeline's wrong-path demand can diverge from
// the recording:
//
//   - The correct-path walk skips unconsumed wrong-path records (the replay
//     machine mispredicted less, or resolved faster, than the recording).
//   - An exhausted or missing excursion switches to synthesized wrong-path
//     filler (plain ALU ops at advancing PCs) until the redirect arrives —
//     junk fetch, exactly what real hardware executes past a misprediction.
//
// When the stream runs out of correct-path instructions, the replay wraps
// to the beginning, so a short trace can drive an arbitrarily long run.
type ReplaySource struct {
	t   *Trace
	r   *Reader
	buf []Record // decoded-but-undelivered lookahead

	pool *isa.Pool // optional instruction arena (see workload.PoolUser)

	inWP    bool
	synth   bool
	synthPC uint64
	wpNext  uint64 // the pc the recorded source would fetch next in-excursion

	served    uint64 // correct-path instructions delivered
	wrapped   uint64 // times the stream restarted
	discarded uint64 // records consumed since the last rewind (snapshot position)
}

var (
	_ workload.InstrSource = (*ReplaySource)(nil)
	_ workload.PoolUser    = (*ReplaySource)(nil)
)

// UsePool implements workload.PoolUser: subsequent instructions are
// allocated from p (nil reverts to the heap).
func (s *ReplaySource) UsePool(p *isa.Pool) bool {
	s.pool = p
	return true
}

// newInstr allocates one blank instruction record, from the arena when one
// is installed.
func (s *ReplaySource) newInstr(pc uint64, class isa.Class) *isa.Instr {
	if s.pool != nil {
		return s.pool.Get(0, pc, class)
	}
	return isa.NewInstr(0, pc, class)
}

// NewReplaySource starts a replay of the trace from its beginning.
func NewReplaySource(t *Trace) *ReplaySource {
	s := &ReplaySource{t: t}
	s.rewind()
	return s
}

// rewind restarts the record stream.
func (s *ReplaySource) rewind() {
	r, err := NewReader(bytes.NewReader(s.t.raw))
	if err != nil {
		// The trace was fully validated at Load; a header that no longer
		// parses means memory corruption, not input error.
		panic(fmt.Sprintf("trace: validated trace failed to reopen: %v", err))
	}
	s.r = r
	s.buf = s.buf[:0]
	s.discarded = 0
}

// peekAt returns the i-th undelivered record (0 = next), decoding ahead as
// needed, or false past end of stream. Peeking never discards records: a
// lookahead past stale wrong-path content must not eat the excursion
// boundaries a later StartWrongPath call will want.
func (s *ReplaySource) peekAt(i int) (*Record, bool) {
	for len(s.buf) <= i {
		rec, err := s.r.Next()
		if err != nil {
			return nil, false // io.EOF; other errors impossible post-validation
		}
		s.buf = append(s.buf, rec)
	}
	return &s.buf[i], true
}

// pop delivers the front record.
func (s *ReplaySource) pop() Record {
	rec, ok := s.peekAt(0)
	if !ok {
		panic("trace: pop past end of stream")
	}
	out := *rec
	s.buf = s.buf[1:]
	s.discarded++
	return out
}

// findCorrectPath locates the next correct-path instruction record, looking
// past stale wrong-path content without discarding it, and wrapping at end
// of stream. It returns the record and its lookahead index.
func (s *ReplaySource) findCorrectPath() (*Record, int) {
	for {
		for i := 0; ; i++ {
			rec, ok := s.peekAt(i)
			if !ok {
				break
			}
			if rec.Kind == KindInstr && !rec.WrongPath {
				return rec, i
			}
		}
		// No correct-path instruction left: drop the stale tail and wrap.
		// Load-time validation guarantees the stream has at least one.
		s.rewind()
		s.wrapped++
	}
}

// Next produces the next correct-path instruction, discarding any stale
// wrong-path records (excursions the replaying machine never entered) that
// precede it.
func (s *ReplaySource) Next() *isa.Instr {
	if s.inWP {
		panic("trace: Next called while in wrong-path mode")
	}
	rec, i := s.findCorrectPath()
	in := s.newInstr(rec.PC, rec.Class)
	rec.fillInstr(in)
	s.buf = s.buf[i+1:]
	s.discarded += uint64(i + 1)
	s.served++
	return in
}

// StartWrongPath enters wrong-path mode. If the stream's next record is the
// matching excursion start (the exact-replay case) it is consumed and the
// recorded excursion is served; otherwise the source synthesizes filler.
func (s *ReplaySource) StartWrongPath(target uint64) {
	if s.inWP {
		panic("trace: StartWrongPath while already in wrong-path mode")
	}
	s.inWP = true
	if rec, ok := s.peekAt(0); ok && rec.Kind == KindStartWrongPath {
		s.wpNext = rec.Target // the recorded source's normalized entry pc
		s.synth = false
		s.pop()
		return
	}
	s.synth = true
	s.synthPC = target &^ 3
}

// NextWrongPath produces the next wrong-path instruction: the recorded one
// when available, synthesized filler once the recorded excursion runs dry.
func (s *ReplaySource) NextWrongPath() *isa.Instr {
	if !s.inWP {
		panic("trace: NextWrongPath outside wrong-path mode")
	}
	if !s.synth {
		if rec, ok := s.peekAt(0); ok && rec.Kind == KindInstr && rec.WrongPath {
			in := s.newInstr(rec.PC, rec.Class)
			rec.fillInstr(in)
			s.pop()
			s.wpNext = in.PC + synthPCStep
			if in.Class == isa.ClassBranch && in.Taken {
				s.wpNext = in.Target
			}
			return in
		}
		// Recorded excursion exhausted (the replay machine resolves the
		// branch later than the recording did). Continue from where the
		// recorded walk stood: the end marker's pending pc when present.
		s.synth = true
		s.synthPC = s.wpNext
		if rec, ok := s.peekAt(0); ok && rec.Kind == KindEndWrongPath {
			s.synthPC = rec.Target
		}
	}
	in := s.newInstr(s.synthPC, isa.ClassIntALU)
	in.WrongPath = true
	s.synthPC += synthPCStep
	return in
}

// EndWrongPath leaves wrong-path mode, consuming through the recorded
// excursion's end marker when one is pending.
func (s *ReplaySource) EndWrongPath() {
	if !s.inWP {
		panic("trace: EndWrongPath outside wrong-path mode")
	}
	s.inWP = false
	if s.synth {
		s.synth = false
		return
	}
	// Skip the excursion's unconsumed tail. Stop without consuming if a
	// correct-path instruction or a new excursion start appears first (a
	// recording that ended mid-excursion has no end marker).
	for {
		rec, ok := s.peekAt(0)
		if !ok {
			return
		}
		switch {
		case rec.Kind == KindEndWrongPath:
			s.pop()
			return
		case rec.Kind == KindInstr && rec.WrongPath:
			s.pop()
		default:
			return
		}
	}
}

// InWrongPath reports whether the source is in wrong-path mode.
func (s *ReplaySource) InWrongPath() bool { return s.inWP }

// CurrentPC returns the address the next produce call will deliver. While
// the front end stalls past the last recorded wrong-path instruction, the
// end marker's pending pc reproduces exactly what the recorded source
// reported (this is what keeps replayed I-cache behaviour bit-identical).
func (s *ReplaySource) CurrentPC() uint64 {
	if s.inWP {
		if s.synth {
			return s.synthPC
		}
		if rec, ok := s.peekAt(0); ok {
			switch {
			case rec.Kind == KindInstr && rec.WrongPath:
				return rec.PC
			case rec.Kind == KindEndWrongPath:
				return rec.Target
			}
		}
		return s.wpNext
	}
	rec, _ := s.findCorrectPath()
	return rec.PC
}

// Served returns the number of correct-path instructions delivered.
func (s *ReplaySource) Served() uint64 { return s.served }

// Wrapped returns how many times the replay restarted the stream.
func (s *ReplaySource) Wrapped() uint64 { return s.wrapped }

// String implements fmt.Stringer.
func (s *ReplaySource) String() string {
	return fmt.Sprintf("trace replay %s: %d/%d instrs served, %d wraps",
		s.t.Meta.Name, s.served, s.t.Stats.Instrs, s.wrapped)
}
