package bpred

import "fmt"

// State is the predictor's snapshot form: every table, the speculative
// global history, the return-address stack, and the accuracy counters.
type State struct {
	Table       []uint8  `json:"table"`
	History     uint64   `json:"history"`
	BTBTag      []uint64 `json:"btb_tag"`
	BTBTgt      []uint64 `json:"btb_tgt"`
	RAS         []uint64 `json:"ras,omitempty"`
	RASTop      int      `json:"ras_top"`
	Lookups     uint64   `json:"lookups"`
	Mispredicts uint64   `json:"mispredicts"`
	BTBHits     uint64   `json:"btb_hits"`
	BTBMisses   uint64   `json:"btb_misses"`
}

// CaptureState snapshots the predictor.
func (p *Predictor) CaptureState() State {
	return State{
		Table:       append([]uint8(nil), p.table...),
		History:     p.history,
		BTBTag:      append([]uint64(nil), p.btbTag...),
		BTBTgt:      append([]uint64(nil), p.btbTgt...),
		RAS:         append([]uint64(nil), p.ras...),
		RASTop:      p.rasTop,
		Lookups:     p.lookups,
		Mispredicts: p.mispredicts,
		BTBHits:     p.btbHits,
		BTBMisses:   p.btbMisses,
	}
}

// RestoreState reinstates a captured state into a predictor built with the
// same configuration (table geometries must match).
func (p *Predictor) RestoreState(st State) error {
	if len(st.Table) != len(p.table) || len(st.BTBTag) != len(p.btbTag) ||
		len(st.BTBTgt) != len(p.btbTgt) || len(st.RAS) != len(p.ras) {
		return fmt.Errorf("bpred: restored table sizes (%d/%d/%d/%d) do not match this predictor's configuration (%d/%d/%d/%d)",
			len(st.Table), len(st.BTBTag), len(st.BTBTgt), len(st.RAS),
			len(p.table), len(p.btbTag), len(p.btbTgt), len(p.ras))
	}
	copy(p.table, st.Table)
	p.history = st.History
	copy(p.btbTag, st.BTBTag)
	copy(p.btbTgt, st.BTBTgt)
	copy(p.ras, st.RAS)
	p.rasTop = st.RASTop
	p.lookups = st.Lookups
	p.mispredicts = st.Mispredicts
	p.btbHits = st.BTBHits
	p.btbMisses = st.BTBMisses
	return nil
}
