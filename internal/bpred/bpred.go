// Package bpred implements the branch prediction hardware of the simulated
// front end: a gshare direction predictor (global history XOR PC indexing a
// table of 2-bit saturating counters), a branch target buffer, and a return
// address stack. A bimodal predictor (no history) is available for
// comparison and ablation.
//
// The predictor is real, not a stand-in: misprediction rates in the
// experiments emerge from running these tables over the synthetic
// instruction streams, exactly as SimpleScalar's predictor ran over Spec95
// traces in the paper.
package bpred

import "fmt"

// Kind selects the direction-prediction scheme.
type Kind uint8

// Predictor kinds.
const (
	GShare Kind = iota
	Bimodal
	Taken    // static predict-taken (ablation baseline)
	NotTaken // static predict-not-taken (ablation baseline)
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case GShare:
		return "gshare"
	case Bimodal:
		return "bimodal"
	case Taken:
		return "taken"
	case NotTaken:
		return "nottaken"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Config describes the predictor's table geometry.
type Config struct {
	Kind        Kind
	TableBits   int // log2 of the direction table size
	HistoryBits int // global history length (gshare only)
	BTBBits     int // log2 of BTB entries
	RASEntries  int // return address stack depth
}

// DefaultConfig matches a 4K-entry gshare with 8 bits of history, a 2K-entry
// BTB and an 8-deep RAS: typical for the paper's era and the scale of its
// 16 KB front end.
func DefaultConfig() Config {
	return Config{Kind: GShare, TableBits: 12, HistoryBits: 8, BTBBits: 11, RASEntries: 8}
}

// Predictor is the combined direction predictor, BTB and RAS.
type Predictor struct {
	cfg     Config
	table   []uint8 // 2-bit saturating counters
	history uint64  // global history register (speculatively updated)
	btbTag  []uint64
	btbTgt  []uint64
	ras     []uint64
	rasTop  int

	// Statistics.
	lookups     uint64
	mispredicts uint64
	btbHits     uint64
	btbMisses   uint64
}

// New builds a predictor. All counters start weakly not-taken, matching a
// cold machine.
func New(cfg Config) *Predictor {
	if cfg.TableBits < 1 || cfg.TableBits > 24 {
		panic(fmt.Sprintf("bpred: TableBits %d outside [1,24]", cfg.TableBits))
	}
	if cfg.BTBBits < 1 || cfg.BTBBits > 24 {
		panic(fmt.Sprintf("bpred: BTBBits %d outside [1,24]", cfg.BTBBits))
	}
	if cfg.HistoryBits < 0 || cfg.HistoryBits > 32 {
		panic(fmt.Sprintf("bpred: HistoryBits %d outside [0,32]", cfg.HistoryBits))
	}
	if cfg.RASEntries < 0 {
		panic(fmt.Sprintf("bpred: RASEntries %d negative", cfg.RASEntries))
	}
	p := &Predictor{
		cfg:    cfg,
		table:  make([]uint8, 1<<cfg.TableBits),
		btbTag: make([]uint64, 1<<cfg.BTBBits),
		btbTgt: make([]uint64, 1<<cfg.BTBBits),
		ras:    make([]uint64, cfg.RASEntries),
	}
	for i := range p.table {
		p.table[i] = 1 // weakly not-taken
	}
	return p
}

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

func (p *Predictor) index(pc uint64) uint64 {
	mask := uint64(1)<<p.cfg.TableBits - 1
	idx := pc >> 2
	if p.cfg.Kind == GShare {
		hist := p.history & (uint64(1)<<p.cfg.HistoryBits - 1)
		idx ^= hist
	}
	return idx & mask
}

// Prediction is the front end's view of one branch.
type Prediction struct {
	Taken     bool
	Target    uint64
	BTBHit    bool
	tableIdx  uint64
	usedTable bool
}

// Predict consults the direction table and BTB for the branch at pc. The
// global history register is updated speculatively with the prediction, as
// real front ends do; Resolve repairs it on a misprediction.
func (p *Predictor) Predict(pc uint64) Prediction {
	p.lookups++
	var taken bool
	pred := Prediction{}
	switch p.cfg.Kind {
	case Taken:
		taken = true
	case NotTaken:
		taken = false
	default:
		idx := p.index(pc)
		taken = p.table[idx] >= 2
		pred.tableIdx = idx
		pred.usedTable = true
	}
	pred.Taken = taken

	bidx := (pc >> 2) & (uint64(1)<<p.cfg.BTBBits - 1)
	if p.btbTag[bidx] == pc && pc != 0 {
		pred.BTBHit = true
		pred.Target = p.btbTgt[bidx]
		p.btbHits++
	} else {
		p.btbMisses++
		// Without a BTB hit a taken prediction has no target; the front end
		// treats this as a (cheap) fetch redirect once decode computes it.
		pred.Target = 0
	}

	if p.cfg.HistoryBits > 0 {
		p.history = p.history<<1 | boolBit(taken)
	}
	return pred
}

// Resolve trains the predictor with the actual outcome of a branch at pc and
// repairs the speculative global history if the prediction was wrong.
// It must be called once per predicted branch, in program order (the commit
// stage's view); pred must be the Prediction returned for this instance.
func (p *Predictor) Resolve(pc uint64, pred Prediction, taken bool, target uint64) {
	if pred.usedTable {
		ctr := p.table[pred.tableIdx]
		if taken {
			if ctr < 3 {
				ctr++
			}
		} else if ctr > 0 {
			ctr--
		}
		p.table[pred.tableIdx] = ctr
	}
	if taken {
		bidx := (pc >> 2) & (uint64(1)<<p.cfg.BTBBits - 1)
		p.btbTag[bidx] = pc
		p.btbTgt[bidx] = target
	}
	if pred.Taken != taken {
		p.mispredicts++
		if p.cfg.HistoryBits > 0 {
			// Repair: overwrite the speculative bit with the real outcome.
			p.history = (p.history &^ 1) | boolBit(taken)
		}
	}
}

// HistorySnapshot returns the current global history register, for
// checkpointing at a discovered misprediction.
func (p *Predictor) HistorySnapshot() uint64 { return p.history }

// RestoreHistory rewinds the global history register to a snapshot taken by
// HistorySnapshot, discarding the bits inserted by wrong-path lookups.
func (p *Predictor) RestoreHistory(h uint64) { p.history = h }

// PushRAS records a call's return address.
func (p *Predictor) PushRAS(retAddr uint64) {
	if len(p.ras) == 0 {
		return
	}
	p.ras[p.rasTop%len(p.ras)] = retAddr
	p.rasTop++
}

// PopRAS predicts a return's target; ok is false when the stack is empty.
func (p *Predictor) PopRAS() (addr uint64, ok bool) {
	if len(p.ras) == 0 || p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)], true
}

// Stats reports accuracy counters.
type Stats struct {
	Lookups     uint64
	Mispredicts uint64
	BTBHits     uint64
	BTBMisses   uint64
}

// Stats returns a snapshot of the predictor's counters.
func (p *Predictor) Stats() Stats {
	return Stats{
		Lookups:     p.lookups,
		Mispredicts: p.mispredicts,
		BTBHits:     p.btbHits,
		BTBMisses:   p.btbMisses,
	}
}

// Accuracy returns the fraction of lookups whose direction was later
// resolved as correctly predicted; 1.0 when no branches have resolved.
func (p *Predictor) Accuracy() float64 {
	if p.lookups == 0 {
		return 1
	}
	return 1 - float64(p.mispredicts)/float64(p.lookups)
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
