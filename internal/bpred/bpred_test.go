package bpred

import (
	"math/rand"
	"testing"
)

func TestAlwaysTakenBranchLearned(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x4000)
	misses := 0
	for i := 0; i < 100; i++ {
		pred := p.Predict(pc)
		if !pred.Taken {
			misses++
		}
		p.Resolve(pc, pred, true, 0x5000)
	}
	// Cold counters start not-taken and the global history churns the index
	// while training; learning should still complete within a handful of
	// table entries.
	if misses > 12 {
		t.Errorf("always-taken branch mispredicted %d/100 times", misses)
	}
}

func TestAlternatingBranchGshareLearns(t *testing.T) {
	// T,N,T,N... is perfectly predictable with global history.
	p := New(DefaultConfig())
	pc := uint64(0x4000)
	misses := 0
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		pred := p.Predict(pc)
		if pred.Taken != taken {
			misses++
		}
		p.Resolve(pc, pred, taken, 0x5000)
	}
	// Allow warmup, then near-perfect.
	if misses > 40 {
		t.Errorf("alternating branch mispredicted %d/400 with gshare", misses)
	}
}

func TestBimodalWorseThanGshareOnPattern(t *testing.T) {
	run := func(kind Kind) int {
		cfg := DefaultConfig()
		cfg.Kind = kind
		p := New(cfg)
		pc := uint64(0x1230)
		misses := 0
		for i := 0; i < 1000; i++ {
			taken := i%2 == 0
			pred := p.Predict(pc)
			if pred.Taken != taken {
				misses++
			}
			p.Resolve(pc, pred, taken, 0x5000)
		}
		return misses
	}
	g, b := run(GShare), run(Bimodal)
	if g >= b {
		t.Errorf("gshare (%d misses) should beat bimodal (%d) on alternating pattern", g, b)
	}
}

func TestStaticPredictors(t *testing.T) {
	for _, kind := range []Kind{Taken, NotTaken} {
		cfg := DefaultConfig()
		cfg.Kind = kind
		p := New(cfg)
		pred := p.Predict(0x100)
		if pred.Taken != (kind == Taken) {
			t.Errorf("%v predictor predicted %v", kind, pred.Taken)
		}
	}
}

func TestBTB(t *testing.T) {
	p := New(DefaultConfig())
	pc, tgt := uint64(0x8000), uint64(0x9000)
	pred := p.Predict(pc)
	if pred.BTBHit {
		t.Error("cold BTB hit")
	}
	p.Resolve(pc, pred, true, tgt)
	pred = p.Predict(pc)
	if !pred.BTBHit || pred.Target != tgt {
		t.Errorf("BTB miss after training: hit=%v target=%#x", pred.BTBHit, pred.Target)
	}
}

func TestBTBNotUpdatedOnNotTaken(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x8000)
	pred := p.Predict(pc)
	p.Resolve(pc, pred, false, 0)
	pred = p.Predict(pc)
	if pred.BTBHit {
		t.Error("BTB should not learn not-taken branches")
	}
}

func TestRAS(t *testing.T) {
	p := New(DefaultConfig())
	if _, ok := p.PopRAS(); ok {
		t.Error("empty RAS popped a value")
	}
	p.PushRAS(0x100)
	p.PushRAS(0x200)
	if a, ok := p.PopRAS(); !ok || a != 0x200 {
		t.Errorf("PopRAS = %#x,%v want 0x200", a, ok)
	}
	if a, ok := p.PopRAS(); !ok || a != 0x100 {
		t.Errorf("PopRAS = %#x,%v want 0x100", a, ok)
	}
	if _, ok := p.PopRAS(); ok {
		t.Error("drained RAS popped a value")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASEntries = 2
	p := New(cfg)
	p.PushRAS(1)
	p.PushRAS(2)
	p.PushRAS(3) // overwrites 1
	if a, _ := p.PopRAS(); a != 3 {
		t.Errorf("got %d, want 3", a)
	}
	if a, _ := p.PopRAS(); a != 2 {
		t.Errorf("got %d, want 2", a)
	}
}

func TestStatsAndAccuracy(t *testing.T) {
	p := New(DefaultConfig())
	if p.Accuracy() != 1 {
		t.Error("cold accuracy should be 1")
	}
	pc := uint64(0x4000)
	for i := 0; i < 50; i++ {
		pred := p.Predict(pc)
		p.Resolve(pc, pred, true, 0x5000)
	}
	st := p.Stats()
	if st.Lookups != 50 {
		t.Errorf("lookups = %d", st.Lookups)
	}
	if st.Mispredicts == 0 || st.Mispredicts > 12 {
		t.Errorf("mispredicts = %d, want small nonzero (cold start)", st.Mispredicts)
	}
	if acc := p.Accuracy(); acc <= 0.75 || acc >= 1 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestBiasedRandomStreamAccuracy(t *testing.T) {
	// A 90%-taken random branch should be predicted close to (but not above)
	// its bias by a bimodal predictor.
	cfg := DefaultConfig()
	cfg.Kind = Bimodal
	p := New(cfg)
	rng := rand.New(rand.NewSource(7))
	pc := uint64(0xa0)
	hits := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		taken := rng.Float64() < 0.9
		pred := p.Predict(pc)
		if pred.Taken == taken {
			hits++
		}
		p.Resolve(pc, pred, taken, 0x5000)
	}
	acc := float64(hits) / n
	if acc < 0.85 || acc > 0.95 {
		t.Errorf("bimodal accuracy on 90%% biased branch = %v, want ~0.90", acc)
	}
}

func TestManyBranchesNoAliasCatastrophe(t *testing.T) {
	// 64 branches with distinct fixed biases; overall accuracy should be
	// high since the table has 2048 entries.
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(11))
	hits, n := 0, 0
	for round := 0; round < 500; round++ {
		for b := 0; b < 64; b++ {
			pc := uint64(0x1000 + b*4)
			taken := b%2 == 0 // fixed per-branch direction
			pred := p.Predict(pc)
			if pred.Taken == taken {
				hits++
			}
			n++
			p.Resolve(pc, pred, taken, uint64(0x2000+rng.Intn(16)*4))
		}
	}
	if acc := float64(hits) / float64(n); acc < 0.9 {
		t.Errorf("accuracy on fixed-direction branch set = %v, want > 0.9", acc)
	}
}

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"table0":   {Kind: GShare, TableBits: 0, HistoryBits: 8, BTBBits: 9},
		"tableBig": {Kind: GShare, TableBits: 30, HistoryBits: 8, BTBBits: 9},
		"btb0":     {Kind: GShare, TableBits: 11, HistoryBits: 8, BTBBits: 0},
		"histNeg":  {Kind: GShare, TableBits: 11, HistoryBits: -1, BTBBits: 9},
		"rasNeg":   {Kind: GShare, TableBits: 11, HistoryBits: 8, BTBBits: 9, RASEntries: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %s did not panic", name)
				}
			}()
			New(cfg)
		}()
	}
}
