package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"galsim/internal/timeline"
)

// RequestIDHeader carries the request ID on the wire. Incoming values are
// trusted (so a caller can correlate coordinator and worker logs with its
// own ID); absent ones are generated. The ID is echoed on the response and
// stored in the request context for handlers and backends to propagate.
const RequestIDHeader = "X-Request-Id"

// TraceParentHeader is the W3C Trace Context header
// (00-<trace-id>-<span-id>-<flags>). Instrument adopts an incoming trace
// context, generates one otherwise, and echoes the header on the response;
// the context's TraceContext carries it to the coordinator and workers so
// every span of a sweep shares one trace ID.
const TraceParentHeader = "traceparent"

type ctxKey int

const (
	requestIDKey ctxKey = iota
	traceKey
)

// TraceContext is the distributed-tracing identity of a request: the trace
// it belongs to and the span that produced it (the parent of any span the
// current component records).
type TraceContext struct {
	TraceID string // 32 hex digits
	SpanID  string // 16 hex digits, the caller's span
}

// Valid reports whether the context carries a usable trace ID.
func (tc TraceContext) Valid() bool { return tc.TraceID != "" }

// Header renders the W3C traceparent value for outgoing requests.
func (tc TraceContext) Header() string {
	return timeline.FormatTraceParent(tc.TraceID, tc.SpanID)
}

// ContextWithRequestID returns ctx carrying the given request ID.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// ContextWithTrace returns ctx carrying the given trace context.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceKey, tc)
}

// Trace returns the trace context carried by ctx (zero when absent).
func Trace(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(traceKey).(TraceContext)
	return tc
}

// NewRequestID returns a fresh 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter records the status code written by the wrapped handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap supports http.NewResponseController (flush/deadline passthrough
// for long-polling handlers).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// routeLabel collapses a request path to its first segment so metric label
// cardinality stays bounded regardless of path parameters.
func routeLabel(path string) string {
	path = strings.TrimPrefix(path, "/")
	if i := strings.IndexByte(path, '/'); i >= 0 {
		path = path[:i]
	}
	if path == "" {
		return "/"
	}
	return "/" + path
}

// Instrument wraps next with the shared HTTP observability stack: it
// assigns (or adopts) a request ID, stores it in the context and response
// header, counts requests/errors and observes latency in reg under
// <component>_http_* names, and emits one slog access-log line per request.
// reg and log may each be nil to disable that half.
func Instrument(component string, reg *Registry, log *slog.Logger, next http.Handler) http.Handler {
	var requests, errors Counter
	var latency Histogram
	if reg != nil {
		requests = reg.Counter(component+"_http_requests_total",
			"HTTP requests served, by method, route and status code.",
			"method", "route", "code")
		errors = reg.Counter(component+"_http_errors_total",
			"HTTP responses with status >= 400, by method, route and status code.",
			"method", "route", "code")
		latency = reg.Histogram(component+"_http_request_seconds",
			"HTTP request latency in seconds, by method and route.",
			nil, "method", "route")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Trace context: adopt the caller's W3C traceparent, else start a
		// new trace here. The caller's span ID (if any) becomes the parent
		// of whatever spans this component records.
		tc := TraceContext{}
		if trID, spID, ok := timeline.ParseTraceParent(r.Header.Get(TraceParentHeader)); ok {
			tc = TraceContext{TraceID: trID, SpanID: spID}
		} else {
			// New trace rooted at this request; the synthetic span ID
			// stands for the HTTP request itself.
			tc = TraceContext{TraceID: timeline.NewTraceID(), SpanID: timeline.NewSpanID()}
		}
		// Request ID: adopt the caller's, else derive it from the trace ID
		// so logs and traces correlate without a second lookup.
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = tc.TraceID[:16]
		}
		w.Header().Set(RequestIDHeader, id)
		w.Header().Set(TraceParentHeader, tc.Header())
		ctx := ContextWithRequestID(r.Context(), id)
		ctx = ContextWithTrace(ctx, tc)
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}

		route := routeLabel(r.URL.Path)
		if reg != nil {
			code := strconv.Itoa(sw.status)
			requests.Inc(r.Method, route, code)
			if sw.status >= 400 {
				errors.Inc(r.Method, route, code)
			}
			latency.Observe(elapsed.Seconds(), r.Method, route)
		}
		if log != nil {
			log.LogAttrs(r.Context(), slog.LevelInfo, "http request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Float64("duration_ms", float64(elapsed.Microseconds())/1000),
				slog.String("request_id", id),
				slog.String("trace_id", tc.TraceID),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}
