package telemetry

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestInstrument checks the middleware end to end: request-ID generation
// and adoption, context propagation, metric increments (including the error
// counter), and the access-log line.
func TestInstrument(t *testing.T) {
	reg := NewRegistry()
	var logBuf bytes.Buffer
	log, err := NewLogger(&logBuf, "info", "text")
	if err != nil {
		t.Fatal(err)
	}

	var seenID string
	h := Instrument("svc", reg, log, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenID = RequestID(r.Context())
		if r.URL.Path == "/boom" {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))

	// Generated ID: none supplied, one must come back on the response and
	// reach the handler's context.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/run", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	gotID := rec.Header().Get(RequestIDHeader)
	if gotID == "" || gotID != seenID {
		t.Errorf("request id: header %q, context %q", gotID, seenID)
	}

	// Adopted ID: a caller-supplied ID wins.
	req := httptest.NewRequest("GET", "/sweeps/s7/progress", nil)
	req.Header.Set(RequestIDHeader, "cafe0123")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seenID != "cafe0123" || rec.Header().Get(RequestIDHeader) != "cafe0123" {
		t.Errorf("supplied request id not adopted: context %q", seenID)
	}

	// Error path increments the error counter.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/boom", nil))
	if rec.Code != 500 {
		t.Fatalf("status = %d", rec.Code)
	}

	var out bytes.Buffer
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		`svc_http_requests_total{method="GET",route="/run",code="200"} 1`,
		`svc_http_requests_total{method="GET",route="/sweeps",code="200"} 1`,
		`svc_http_requests_total{method="POST",route="/boom",code="500"} 1`,
		`svc_http_errors_total{method="POST",route="/boom",code="500"} 1`,
		`svc_http_request_seconds_count{method="GET",route="/run"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing metric line %q in:\n%s", want, text)
		}
	}

	logs := logBuf.String()
	if !strings.Contains(logs, "request_id=cafe0123") {
		t.Errorf("access log missing request_id: %s", logs)
	}
	if !strings.Contains(logs, "path=/sweeps/s7/progress") || !strings.Contains(logs, "status=500") {
		t.Errorf("access log missing fields: %s", logs)
	}
}
