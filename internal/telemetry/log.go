package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps the -log-level flag values to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds the shared slog.Logger used by the binaries. format is
// "text" or "json"; level is parsed by ParseLevel. The text handler is the
// default and keeps log output human-readable on a terminal.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
	return slog.New(h), nil
}
