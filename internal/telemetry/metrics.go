// Package telemetry is the repo's zero-dependency observability kit: a
// concurrency-safe metric registry that renders Prometheus text exposition
// format, shared slog construction for the binaries, and HTTP middleware
// that emits access logs and request metrics with propagated request IDs.
//
// The registry holds three metric kinds — counters, gauges (value- or
// function-backed) and histograms — each optionally split by a fixed label
// set. All mutation paths are lock-free after first touch of a label
// combination (atomic float64 bit-casts), so instrumenting a hot handler
// costs a map lookup plus an atomic add.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram bucket upper bounds, in seconds,
// matching the conventional Prometheus client defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry is a set of metric families. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is one named metric with a fixed type and label schema, holding a
// series per observed label-value combination.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64      // histogram upper bounds, sorted, without +Inf
	fn      func() float64 // function-backed gauge; labels must be empty

	mu     sync.RWMutex
	series map[string]*series
}

// series is the state behind one label-value combination. Counter and gauge
// values live in val as float64 bits; histograms use counts/sum/count.
type series struct {
	labelVals []string
	val       atomic.Uint64   // float64 bits
	counts    []atomic.Uint64 // per-bucket (non-cumulative), histograms only
	sum       atomic.Uint64   // float64 bits
	count     atomic.Uint64
}

func addFloat(a *atomic.Uint64, delta float64) {
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

// seriesKey joins label values with a separator that cannot appear in a
// valid UTF-8 label value boundary ambiguity (0xff is never a standalone
// rune byte).
func seriesKey(vals []string) string {
	if len(vals) == 0 {
		return ""
	}
	return strings.Join(vals, "\xff")
}

func (f *family) get(labelVals []string) *series {
	if len(labelVals) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q expects %d label values, got %d",
			f.name, len(f.labels), len(labelVals)))
	}
	key := seriesKey(labelVals)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labelVals: append([]string(nil), labelVals...)}
	if f.typ == typeHistogram {
		s.counts = make([]atomic.Uint64, len(f.buckets)+1) // +Inf overflow bucket
	}
	f.series[key] = s
	return s
}

// register creates or fetches a family, panicking on any schema conflict —
// re-registering an existing name is allowed (and returns the same family)
// only when type and labels match, so packages can idempotently declare
// their metrics against a shared registry.
func (r *Registry) register(name, help string, typ metricType, labels []string, buckets []float64, fn func() float64) *family {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with conflicting schema", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("telemetry: metric %q re-registered with conflicting labels", name))
			}
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		typ:    typ,
		labels: append([]string(nil), labels...),
		fn:     fn,
		series: map[string]*series{},
	}
	if typ == typeHistogram {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		f.buckets = append([]float64(nil), buckets...)
		sort.Float64s(f.buckets)
	}
	if len(labels) == 0 && fn == nil {
		f.get(nil) // materialize the single series so it renders even at zero
	}
	r.families[name] = f
	return f
}

// Counter is a monotonically increasing metric, optionally labelled.
type Counter struct{ f *family }

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) Counter {
	return Counter{r.register(name, help, typeCounter, labels, nil, nil)}
}

// Inc adds 1 to the series identified by labelVals.
func (c Counter) Inc(labelVals ...string) { c.Add(1, labelVals...) }

// Add adds v (which must be >= 0) to the series identified by labelVals.
func (c Counter) Add(v float64, labelVals ...string) {
	if v < 0 {
		panic(fmt.Sprintf("telemetry: counter %q decremented", c.f.name))
	}
	addFloat(&c.f.get(labelVals).val, v)
}

// Gauge is a metric that can go up and down, optionally labelled.
type Gauge struct{ f *family }

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) Gauge {
	return Gauge{r.register(name, help, typeGauge, labels, nil, nil)}
}

// Set stores v in the series identified by labelVals.
func (g Gauge) Set(v float64, labelVals ...string) {
	g.f.get(labelVals).val.Store(math.Float64bits(v))
}

// Add adds v (may be negative) to the series identified by labelVals.
func (g Gauge) Add(v float64, labelVals ...string) {
	addFloat(&g.f.get(labelVals).val, v)
}

// GaugeFunc registers a gauge whose value is computed by fn at render time.
// Function gauges cannot carry labels.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if fn == nil {
		panic(fmt.Sprintf("telemetry: nil GaugeFunc for %q", name))
	}
	r.register(name, help, typeGauge, nil, nil, fn)
}

// Histogram observes value distributions into cumulative buckets.
type Histogram struct{ f *family }

// Histogram registers (or fetches) a histogram family. A nil or empty
// buckets slice selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) Histogram {
	return Histogram{r.register(name, help, typeHistogram, labels, buckets, nil)}
}

// Observe records v into the series identified by labelVals.
func (h Histogram) Observe(v float64, labelVals ...string) {
	s := h.f.get(labelVals)
	i := sort.SearchFloat64s(h.f.buckets, v) // first bucket with bound >= v
	s.counts[i].Add(1)
	addFloat(&s.sum, v)
	s.count.Add(1)
}
