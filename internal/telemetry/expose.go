package telemetry

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the registry in Prometheus text
// exposition format (version 0.0.4). Families are emitted in name order and
// series in label-value order, so output is deterministic for a given state
// — which the golden exposition tests rely on.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.RUnlock()

	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
		}
		bw.WriteString("# TYPE " + f.name + " " + f.typ.String() + "\n")
		if f.fn != nil {
			bw.WriteString(f.name + " " + formatFloat(f.fn()) + "\n")
			continue
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sers := make([]*series, len(keys))
		for i, k := range keys {
			sers[i] = f.series[k]
		}
		f.mu.RUnlock()
		for _, s := range sers {
			switch f.typ {
			case typeHistogram:
				writeHistogram(bw, f, s)
			default:
				bw.WriteString(f.name + labelString(f.labels, s.labelVals) +
					" " + formatFloat(math.Float64frombits(s.val.Load())) + "\n")
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one series' cumulative buckets, sum and count.
func writeHistogram(w *bufio.Writer, f *family, s *series) {
	bucketKeys := append(append([]string{}, f.labels...), "le")
	bucketVals := append(append([]string{}, s.labelVals...), "")
	le := len(bucketVals) - 1
	var cum uint64
	for i, bound := range f.buckets {
		cum += s.counts[i].Load()
		bucketVals[le] = formatFloat(bound)
		w.WriteString(f.name + "_bucket" + labelString(bucketKeys, bucketVals) +
			" " + strconv.FormatUint(cum, 10) + "\n")
	}
	cum += s.counts[len(f.buckets)].Load()
	bucketVals[le] = "+Inf"
	w.WriteString(f.name + "_bucket" + labelString(bucketKeys, bucketVals) +
		" " + strconv.FormatUint(cum, 10) + "\n")
	w.WriteString(f.name + "_sum" + labelString(f.labels, s.labelVals) +
		" " + formatFloat(math.Float64frombits(s.sum.Load())) + "\n")
	w.WriteString(f.name + "_count" + labelString(f.labels, s.labelVals) +
		" " + strconv.FormatUint(s.count.Load(), 10) + "\n")
}

// labelString renders {k1="v1",k2="v2"}, or "" when there are no labels.
func labelString(keys, vals []string) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in text exposition
// format, suitable for mounting at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
