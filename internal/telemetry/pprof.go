package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// RegisterPprof mounts the Go runtime profile handlers under
// /debug/pprof/ on mux — the same set every net/http/pprof import gives
// the default mux, but on an explicit mux so binaries opt in per flag.
// Profiles expose internals; enable only on trusted networks.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
