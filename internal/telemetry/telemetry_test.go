package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRegistryRace hammers one registry from many goroutines — increments,
// gauge stores, histogram observations, lazy series creation and concurrent
// renders — and then checks the final totals. Run under -race this is the
// registry's data-race proof; the totals check proves no update was lost.
func TestRegistryRace(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total", "ops", "kind")
	g := reg.Gauge("depth", "depth")
	h := reg.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1}, "route")

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := fmt.Sprintf("k%d", w%3)
			for i := 0; i < iters; i++ {
				c.Inc(kind)
				c.Add(2, "shared")
				g.Set(float64(i))
				h.Observe(float64(i%100)/100, "/run")
				if i%500 == 0 {
					var sink bytes.Buffer
					if err := reg.WritePrometheus(&sink); err != nil {
						t.Errorf("render: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var out bytes.Buffer
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	wantShared := fmt.Sprintf(`ops_total{kind="shared"} %d`, workers*iters*2)
	if !strings.Contains(text, wantShared) {
		t.Errorf("lost counter updates: want line %q in:\n%s", wantShared, text)
	}
	wantCount := fmt.Sprintf(`lat_seconds_count{route="/run"} %d`, workers*iters)
	if !strings.Contains(text, wantCount) {
		t.Errorf("lost histogram observations: want line %q", wantCount)
	}
}

// TestPrometheusGolden pins the exact exposition-format rendering of a
// registry exercising every metric kind: counters with and without labels,
// value and function gauges, histograms with cumulative buckets, label
// escaping, and deterministic family/series ordering.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()

	jobs := reg.Counter("galsim_jobs_total", "Jobs completed.", "worker", "result")
	jobs.Add(3, "w1", "ok")
	jobs.Inc("w0", "ok")
	jobs.Inc("w1", "error")

	reg.Counter("galsim_requeues_total", "Jobs requeued after lease expiry.")

	depth := reg.Gauge("galsim_queue_depth", "Jobs waiting for a lease.")
	depth.Set(4)

	reg.GaugeFunc("galsim_uptime_seconds", "Seconds since start.", func() float64 { return 12.5 })

	// Observations chosen to sum exactly in binary floating point so the
	// rendered _sum is stable.
	lat := reg.Histogram("galsim_job_seconds", "Job latency.", []float64{0.1, 1, 10})
	lat.Observe(0.25)
	lat.Observe(0.5)
	lat.Observe(0.5)
	lat.Observe(42)

	esc := reg.Gauge("galsim_escapes", "Label \\ escaping\ncheck.", "path")
	esc.Set(1, "a\"b\\c\nd")

	const want = `# HELP galsim_escapes Label \\ escaping\ncheck.
# TYPE galsim_escapes gauge
galsim_escapes{path="a\"b\\c\nd"} 1
# HELP galsim_job_seconds Job latency.
# TYPE galsim_job_seconds histogram
galsim_job_seconds_bucket{le="0.1"} 0
galsim_job_seconds_bucket{le="1"} 3
galsim_job_seconds_bucket{le="10"} 3
galsim_job_seconds_bucket{le="+Inf"} 4
galsim_job_seconds_sum 43.25
galsim_job_seconds_count 4
# HELP galsim_jobs_total Jobs completed.
# TYPE galsim_jobs_total counter
galsim_jobs_total{worker="w0",result="ok"} 1
galsim_jobs_total{worker="w1",result="error"} 1
galsim_jobs_total{worker="w1",result="ok"} 3
# HELP galsim_queue_depth Jobs waiting for a lease.
# TYPE galsim_queue_depth gauge
galsim_queue_depth 4
# HELP galsim_requeues_total Jobs requeued after lease expiry.
# TYPE galsim_requeues_total counter
galsim_requeues_total 0
# HELP galsim_uptime_seconds Seconds since start.
# TYPE galsim_uptime_seconds gauge
galsim_uptime_seconds 12.5
`
	var out bytes.Buffer
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != want {
		t.Errorf("exposition format diverged\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestExpositionLineSyntax validates every rendered line against the
// exposition-format grammar the CI live-fleet check greps for.
func TestExpositionLineSyntax(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "a", "x").Inc("y")
	reg.Histogram("b_seconds", "b", nil).Observe(0.2)
	reg.GaugeFunc("c", "c", func() float64 { return math.Inf(1) })

	var out bytes.Buffer
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name := line[:i]
		if j := strings.IndexByte(name, '{'); j >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("unterminated label set in %q", line)
			}
			name = name[:j]
		}
		for _, r := range name {
			if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				t.Errorf("invalid metric name char %q in %q", r, line)
			}
		}
		val := line[i+1:]
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := parseFloat(val); err != nil {
				t.Errorf("invalid sample value %q in %q", val, line)
			}
		}
	}
}

func parseFloat(s string) (float64, error) {
	var f float64
	_, err := fmt.Sscanf(s, "%g", &f)
	return f, err
}
