module galsim

go 1.24
