package galsim

import (
	"context"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// phasedProfile alternates a heavily integer kernel with a heavily FP one:
// the non-stationary behaviour application-driven DVFS exists to exploit.
func phasedProfile(perPhase uint64) *WorkloadProfile {
	return &WorkloadProfile{
		Name: "int-then-fp",
		Phases: []WorkloadPhase{
			{Benchmark: "ijpeg", Instructions: perPhase},
			{Benchmark: "fpppp", Instructions: perPhase},
		},
	}
}

// TestTraceRoundTripDeterminism is the acceptance criterion for the
// record/replay subsystem: a recorded synthetic run, replayed through an
// identically configured machine, must reproduce the original Result
// exactly — same Committed, SimSeconds, EnergyJoules, IPC and everything
// else the run measures.
func TestTraceRoundTripDeterminism(t *testing.T) {
	dir := t.TempDir()
	for _, machine := range []Machine{Base, GALS} {
		t.Run(string(machine), func(t *testing.T) {
			path := filepath.Join(dir, string(machine)+".trace")
			orig, err := Run(Options{
				Benchmark:    "gcc",
				Machine:      machine,
				Instructions: 20_000,
				RecordTrace:  path,
			})
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := Run(Options{Trace: path, Machine: machine})
			if err != nil {
				t.Fatal(err)
			}
			if replayed.Committed != orig.Committed ||
				replayed.SimSeconds != orig.SimSeconds ||
				replayed.EnergyJoules != orig.EnergyJoules ||
				replayed.IPC != orig.IPC {
				t.Errorf("headline metrics diverged:\noriginal %+v\nreplayed %+v", orig, replayed)
			}
			// Stronger than the acceptance bar: every field except the
			// workload's display name must match bit for bit.
			orig.Benchmark, replayed.Benchmark = "", ""
			if !reflect.DeepEqual(orig, replayed) {
				t.Errorf("full Result diverged:\noriginal %+v\nreplayed %+v", orig, replayed)
			}
		})
	}
}

// TestTraceReplayDefaultsToRecordedLength pins the replay convenience:
// Instructions zero replays exactly what was recorded.
func TestTraceReplayDefaultsToRecordedLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short.trace")
	if _, err := Run(Options{Benchmark: "adpcm", Instructions: 5_000, RecordTrace: path}); err != nil {
		t.Fatal(err)
	}
	r, err := Run(Options{Trace: path})
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed != 5_000 {
		t.Errorf("replay committed %d, want the recorded 5000", r.Committed)
	}
	if r.Benchmark != "replay:adpcm" {
		t.Errorf("replay result benchmark = %q", r.Benchmark)
	}
}

// TestPhasedProfileDynamicDVFS is the acceptance criterion for
// application-driven scaling on non-stationary workloads: a phased custom
// profile under the online DVFS controller must actually retune, and must
// end with the domains at *different* slowdowns (per-domain scaling, which
// only the GALS machine can do).
func TestPhasedProfileDynamicDVFS(t *testing.T) {
	r, err := Run(Options{
		Profile:      phasedProfile(30_000),
		Machine:      GALS,
		Instructions: 90_000,
		DynamicDVFS:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Benchmark != "int-then-fp" {
		t.Errorf("result benchmark = %q, want the profile name", r.Benchmark)
	}
	if r.Retunes == 0 {
		t.Fatal("DynamicDVFS on a phased workload performed no retunes")
	}
	slows := map[float64]bool{}
	for _, s := range r.FinalSlowdowns {
		slows[s] = true
	}
	if len(slows) < 2 {
		t.Errorf("final slowdowns identical across domains: %v (application-driven per-domain scaling should differentiate them)", r.FinalSlowdowns)
	}
}

// TestCustomProfileRunManyCacheHit checks user-defined workloads join the
// shared campaign cache by content: issuing the same profile twice
// simulates once.
func TestCustomProfileRunManyCacheHit(t *testing.T) {
	opts := func() Options {
		return Options{Profile: phasedProfile(2_000), Instructions: 4_000}
	}
	a, err := RunMany(context.Background(), []Options{opts(), opts()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a[0], a[1]) {
		t.Error("identical custom-profile options produced different results")
	}
}

func TestProfileOptionValidation(t *testing.T) {
	if _, err := Run(Options{Benchmark: "gcc", Profile: phasedProfile(1000)}); err == nil {
		t.Error("benchmark+profile accepted")
	}
	bad := phasedProfile(0)
	if _, err := Run(Options{Profile: bad}); err == nil {
		t.Error("zero-length phase accepted")
	}
	if err := (Options{Profile: phasedProfile(1000), Instructions: 2000}).Validate(); err != nil {
		t.Errorf("valid profile options rejected: %v", err)
	}
}

// TestOnCommitEventInvariants pins the tracing hook's contract: events
// arrive in program order with strictly monotonic sequence numbers and
// internally consistent lifecycle timestamps.
func TestOnCommitEventInvariants(t *testing.T) {
	for _, machine := range []Machine{Base, GALS} {
		t.Run(string(machine), func(t *testing.T) {
			var events []CommitEvent
			r, err := Run(Options{
				Benchmark:    "gcc",
				Machine:      machine,
				Instructions: 10_000,
				OnCommit:     func(e CommitEvent) { events = append(events, e) },
			})
			if err != nil {
				t.Fatal(err)
			}
			if uint64(len(events)) != r.Committed {
				t.Fatalf("hook saw %d events for %d commits", len(events), r.Committed)
			}
			for i, e := range events {
				if i > 0 && e.Seq <= events[i-1].Seq {
					t.Fatalf("event %d: Seq %d not above predecessor %d (program order violated)",
						i, e.Seq, events[i-1].Seq)
				}
				if !(e.FetchTimeNs <= e.IssueTimeNs && e.IssueTimeNs <= e.CommitTimeNs) {
					t.Fatalf("event %d (seq %d): timestamps out of order: fetch %v issue %v commit %v",
						i, e.Seq, e.FetchTimeNs, e.IssueTimeNs, e.CommitTimeNs)
				}
				// The ns fields are independent float conversions of integer
				// sim times, so compare slip with a rounding tolerance.
				if diff := e.SlipNs - (e.CommitTimeNs - e.FetchTimeNs); diff > 1e-6 || diff < -1e-6 {
					t.Fatalf("event %d: slip %v != commit-fetch %v", i, e.SlipNs, e.CommitTimeNs-e.FetchTimeNs)
				}
			}
		})
	}
}

// TestSharedSlicesAreFreshCopies locks in that the name-listing APIs hand
// out fresh sorted copies: callers mutating a returned slice must never
// corrupt package state for later callers.
func TestSharedSlicesAreFreshCopies(t *testing.T) {
	cases := map[string]func() []string{
		"Benchmarks":  Benchmarks,
		"DomainNames": DomainNames,
	}
	for name, fn := range cases {
		first := fn()
		if len(first) == 0 {
			t.Fatalf("%s() returned nothing", name)
		}
		want := append([]string{}, first...)
		for i := range first {
			first[i] = "CLOBBERED"
		}
		if got := fn(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s() returned shared state: mutation leaked, got %v", name, got)
		}
	}
	if b := Benchmarks(); !sort.StringsAreSorted(groupKeys(b)) {
		t.Errorf("Benchmarks() not sorted by suite then name: %v", b)
	}
}

// groupKeys maps benchmark names to "suite/name" labels so suite-major
// ordering is checkable with a plain sort test.
func groupKeys(names []string) []string {
	keys := make([]string, len(names))
	for i, n := range names {
		info, err := Describe(n)
		if err != nil {
			keys[i] = n
			continue
		}
		keys[i] = info.Suite + "/" + info.Name
	}
	return keys
}
