// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment end to end and reports
// the headline metric the paper quotes as a custom benchmark metric, so
//
//	go test -bench=. -benchmem
//
// both exercises the full harness and prints the reproduced numbers.
// Shapes to expect (see EXPERIMENTS.md for the full record):
//
//	Figure 5:  GALS relative performance ≈ 0.85–0.98 (paper: 0.85–0.95)
//	Figure 6:  GALS slip ratio > 1 (paper: ≈ 1.65)
//	Figure 8:  integer misspeculation rises in GALS (paper: 13.8% → 16.7%)
//	Figure 9:  GALS energy ≈ 1.0×, power < 1× (paper: +1%, −10%)
//	Figure 13: gcc FP/3 saves energy and power at a modest performance loss
package galsim

import (
	"testing"

	"galsim/internal/clocktree"
	"galsim/internal/experiments"
	"galsim/internal/pipeline"
	"galsim/internal/workload"
)

// benchCfg keeps per-iteration cost manageable: three representative
// benchmarks (one branchy integer, one FP-heavy, the paper's least-affected
// outlier), 15k instructions.
func benchCfg() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Instructions = 15_000
	cfg.Benchmarks = []string{"gcc", "swim", "fpppp"}
	return cfg
}

func BenchmarkTable1SkewTrends(b *testing.B) {
	b.ReportAllocs()
	var mean float64
	for i := 0; i < b.N; i++ {
		m, _, err := clocktree.Estimate(clocktree.DefaultTree(), 1)
		if err != nil {
			b.Fatal(err)
		}
		mean = m
	}
	b.ReportMetric(mean, "skew-ps")
}

func BenchmarkFig5RelativePerformance(b *testing.B) {
	b.ReportAllocs()
	var rel float64
	for i := 0; i < b.N; i++ {
		c := experiments.RunCorpus(benchCfg())
		sum := 0.0
		for _, name := range c.Benchmarks() {
			sum += c.Pair(name).RelPerformance()
		}
		rel = sum / float64(len(c.Benchmarks()))
	}
	b.ReportMetric(rel, "rel-perf")
}

func BenchmarkFig6Slip(b *testing.B) {
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		c := experiments.RunCorpus(benchCfg())
		sum := 0.0
		for _, name := range c.Benchmarks() {
			p := c.Pair(name)
			sum += float64(p.GALS.AvgSlip()) / float64(p.Base.AvgSlip())
		}
		ratio = sum / float64(len(c.Benchmarks()))
	}
	b.ReportMetric(ratio, "slip-ratio")
}

func BenchmarkFig7RelativeSlip(b *testing.B) {
	b.ReportAllocs()
	var share float64
	for i := 0; i < b.N; i++ {
		c := experiments.RunCorpus(benchCfg())
		sum := 0.0
		for _, name := range c.Benchmarks() {
			sum += c.Pair(name).GALS.FIFOSlipShare()
		}
		share = sum / float64(len(c.Benchmarks()))
	}
	b.ReportMetric(share, "fifo-share")
}

func BenchmarkFig8Speculation(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	cfg.Benchmarks = []string{"gcc", "li", "compress"} // integer set
	var delta float64
	for i := 0; i < b.N; i++ {
		c := experiments.RunCorpus(cfg)
		sumB, sumG := 0.0, 0.0
		for _, name := range c.Benchmarks() {
			p := c.Pair(name)
			sumB += p.Base.MisspeculationFrac()
			sumG += p.GALS.MisspeculationFrac()
		}
		delta = (sumG - sumB) / float64(len(c.Benchmarks()))
	}
	b.ReportMetric(100*delta, "misspec-delta-pts")
}

func BenchmarkFig9EnergyPower(b *testing.B) {
	b.ReportAllocs()
	var energy, pwr float64
	for i := 0; i < b.N; i++ {
		c := experiments.RunCorpus(benchCfg())
		sumE, sumP := 0.0, 0.0
		for _, name := range c.Benchmarks() {
			p := c.Pair(name)
			sumE += p.RelEnergy()
			sumP += p.RelPower()
		}
		n := float64(len(c.Benchmarks()))
		energy, pwr = sumE/n, sumP/n
	}
	b.ReportMetric(energy, "rel-energy")
	b.ReportMetric(pwr, "rel-power")
}

func BenchmarkFig10Breakdown(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig10Breakdown(cfg, "compress")
	}
}

func BenchmarkFig11SelectiveSlowdown(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig11SelectiveSlowdown(cfg)
	}
}

func BenchmarkFig12IjpegSweep(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig12IjpegSweep(cfg)
	}
}

func BenchmarkFig13GccSlowdown(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig13GccSlowdown(cfg)
	}
}

func BenchmarkPhaseSensitivity(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.PhaseSensitivity(cfg, "li", 3)
	}
}

// BenchmarkAblations regenerates the design-decision ablation tables (link
// style, synchronizer depth, FIFO capacity, clock phases, predictor,
// memory disambiguation).
func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.AblationLinkStyle(cfg, "gcc")
		experiments.AblationSyncEdges(cfg, "compress")
		experiments.AblationFIFOCapacity(cfg, "swim")
		experiments.AblationClockPhases(cfg, "li")
		experiments.AblationPredictor(cfg, "gcc")
		experiments.AblationDisambiguation(cfg, "vortex")
	}
}

// BenchmarkDynamicDVFS exercises the online frequency/voltage controller
// (the paper's concluding future direction) and reports perl's relative
// energy under it.
func BenchmarkDynamicDVFS(b *testing.B) {
	b.ReportAllocs()
	prof, err := workload.ByName("perl")
	if err != nil {
		b.Fatal(err)
	}
	var rel float64
	for i := 0; i < b.N; i++ {
		base := pipeline.NewCore(pipeline.DefaultConfig(pipeline.Base), prof).Run(30_000)
		cfg := pipeline.DefaultConfig(pipeline.GALS)
		cfg.DynamicDVFS = pipeline.DefaultDynamicDVFS()
		dyn := pipeline.NewCore(cfg, prof).Run(30_000)
		rel = dyn.EnergyPJ / base.EnergyPJ
	}
	b.ReportMetric(rel, "rel-energy")
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// instructions per wall-clock second for the GALS machine.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	prof, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	const n = 20_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := pipeline.DefaultConfig(pipeline.GALS)
		pipeline.NewCore(cfg, prof).Run(n)
	}
	b.ReportMetric(float64(n*uint64(b.N))/b.Elapsed().Seconds(), "sim-instrs/s")
}
