package galsim

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateTimelines = flag.Bool("update-golden", false, "rewrite the golden timeline fixtures")

// timelineCases pin the full trace-event export of a short run on each
// machine variant. The timeline must be as deterministic as Stats: same
// seeds, same events, same formatting, byte for byte. Regenerate with
//
//	go test . -run TestGoldenTimelines -update-golden
//
// only when a change is *supposed* to alter traced behaviour.
func timelineCases() []struct {
	name string
	opts Options
} {
	return []struct {
		name string
		opts Options
	}{
		{"timeline_base_gcc", Options{Benchmark: "gcc", Machine: Base, Instructions: 200,
			Timeline: &TimelineOptions{Detail: true}}},
		{"timeline_gals_gcc", Options{Benchmark: "gcc", Machine: GALS, Instructions: 200,
			Timeline: &TimelineOptions{Detail: true}}},
	}
}

func TestGoldenTimelines(t *testing.T) {
	for _, tc := range timelineCases() {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Timeline == nil {
				t.Fatal("Options.Timeline set but Result.Timeline is nil")
			}
			if res.Timeline.Len() == 0 {
				t.Fatal("timeline recorded no events")
			}
			var buf bytes.Buffer
			if err := res.Timeline.WriteTrace(&buf); err != nil {
				t.Fatal(err)
			}
			if err := ValidateTrace(buf.Bytes()); err != nil {
				t.Fatalf("exported trace is malformed: %v", err)
			}
			path := filepath.Join("testdata", tc.name+".json")
			if *updateTimelines {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d events, %d bytes)", path, res.Timeline.Len(), buf.Len())
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update-golden): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("trace for %s deviates from the committed fixture (%d vs %d bytes); "+
					"if the change is intentional, regenerate with -update-golden",
					tc.name, buf.Len(), len(want))
			}
		})
	}
}

// TestTimelineDoesNotPerturbStats is the observability contract: attaching
// a tracer must not change simulation results. A run with the timeline on
// must produce the identical Result (modulo the Timeline field) as one
// with it off.
func TestTimelineDoesNotPerturbStats(t *testing.T) {
	for _, m := range []Machine{Base, GALS} {
		base := Options{Benchmark: "perl", Machine: m, Instructions: 5000, DynamicDVFS: m == GALS}
		traced := base
		traced.Timeline = &TimelineOptions{Detail: true}
		plain, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		withTL, err := Run(traced)
		if err != nil {
			t.Fatal(err)
		}
		withTL.Timeline = nil
		if !reflect.DeepEqual(plain, withTL) {
			t.Fatalf("%s: Result changed when the timeline was attached:\noff: %+v\non:  %+v", m, plain, withTL)
		}
	}
}

// TestTimelineFlightRecorder exercises the bounded post-mortem mode
// through the public API: the ring keeps only the newest events and the
// dump still validates despite truncation at the front.
func TestTimelineFlightRecorder(t *testing.T) {
	res, err := Run(Options{Benchmark: "gcc", Machine: GALS, Instructions: 20000,
		Timeline: &TimelineOptions{MaxEvents: 256, FlightRecorder: true, Detail: true}})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	if tl.Len() > 256 {
		t.Fatalf("flight ring exceeded its cap: %d events", tl.Len())
	}
	if tl.Dropped() == 0 {
		t.Fatal("expected a 20k-commit GALS run to overflow a 256-event ring")
	}
	var buf bytes.Buffer
	if err := tl.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("flight dump is malformed: %v", err)
	}
}
