package galsim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"galsim/internal/campaign"
	"galsim/internal/pipeline"
)

// Sample is one interval snapshot of the machine's internal state (see
// Options.SampleInterval): cumulative progress plus interval-rate signals —
// per-domain IPC, issue-queue occupancy, inter-domain FIFO depths, stall
// deltas and the DVFS slowdown trajectory.
type Sample = pipeline.Sample

// DomainSample is one clock domain's slice of a Sample.
type DomainSample = pipeline.DomainSample

// StallSample is the machine-wide stall-counter delta of one Sample.
type StallSample = pipeline.StallSample

// Progress is a batch progress snapshot delivered to a ProgressFunc:
// completed, failed and cache-served unit counts out of Total.
type Progress = campaign.Progress

// ProgressFunc receives progress snapshots during RunManyProgress. It is
// called from worker goroutines and must be safe for concurrent use.
type ProgressFunc = campaign.ProgressFunc

// WriteSamplesCSV writes an interval sample series as CSV: one row per
// sample, with global columns first, then per-domain column groups in
// pipeline order (prefixed with the domain name), then the stall deltas.
// The layout matches `galsim -sample -sample-format csv` and
// `galsim-trace stats -sample`.
func WriteSamplesCSV(w io.Writer, samples []Sample) error {
	cw := csv.NewWriter(w)
	header := []string{"cycle", "time_ns", "committed", "ipc"}
	for d := pipeline.DomainID(0); d < pipeline.NumDomains; d++ {
		name := d.String()
		header = append(header,
			name+"_cycles", name+"_slowdown", name+"_ipc",
			name+"_iq_len", name+"_iq_occ", name+"_fifo_depth")
	}
	header = append(header,
		"stall_fetch_icache", "stall_fetch_link_full", "stall_rename_dispatch",
		"stall_complete_backpressure", "stall_loads_blocked")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("galsim: writing sample CSV: %w", err)
	}
	row := make([]string, 0, len(header))
	for _, s := range samples {
		row = row[:0]
		row = append(row,
			strconv.FormatUint(s.Cycle, 10),
			strconv.FormatFloat(s.TimeNs, 'g', -1, 64),
			strconv.FormatUint(s.Committed, 10),
			strconv.FormatFloat(s.IPC, 'g', -1, 64))
		for _, ds := range s.Domains {
			row = append(row,
				strconv.FormatUint(ds.Cycles, 10),
				strconv.FormatFloat(ds.Slowdown, 'g', -1, 64),
				strconv.FormatFloat(ds.IPC, 'g', -1, 64),
				strconv.Itoa(ds.IQLen),
				strconv.FormatFloat(ds.IQOcc, 'g', -1, 64),
				strconv.Itoa(ds.FIFODepth))
		}
		row = append(row,
			strconv.FormatUint(s.Stalls.FetchICache, 10),
			strconv.FormatUint(s.Stalls.FetchLinkFull, 10),
			strconv.FormatUint(s.Stalls.RenameDispatchFull, 10),
			strconv.FormatUint(s.Stalls.CompleteBackpressure, 10),
			strconv.FormatUint(s.Stalls.LoadsBlockedByStores, 10))
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("galsim: writing sample CSV: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("galsim: writing sample CSV: %w", err)
	}
	return nil
}
