package galsim

import (
	"context"

	"galsim/internal/explore"
)

// SearchSpec is a declarative machine design-space search: a strategy
// (grid, random, hillclimb, evolutionary), a search space over MachineSpec
// (clock-domain partitionings, per-domain frequencies, DVFS policy,
// synchronization-FIFO geometry), an evaluation budget, and a
// multi-objective fitness (energy, delay, power — weighted scalarization
// for selection, Pareto dominance for output). Its JSON form is the
// galsim-explore -spec file format. The zero value is usable: an
// evolutionary search over partitionings of the paper's pipeline on gcc.
type SearchSpec = explore.SearchSpec

// SearchSpace is the space a SearchSpec searches.
type SearchSpace = explore.SpaceSpec

// SearchBudget bounds a search.
type SearchBudget = explore.BudgetSpec

// SearchFitness selects and weights a search's objectives.
type SearchFitness = explore.FitnessSpec

// SearchLimitError reports a SearchSpec exceeding an anti-abuse ceiling
// (population, generations, evaluations, or grid-space size); it is
// errors.As-able.
type SearchLimitError = explore.LimitError

// ExploreResult is a finished search: the Pareto frontier (with dominance
// ranks and full machine specs), the best design by scalarized fitness,
// and every distinct design evaluated. Its JSON form is deterministic:
// the same canonical spec and seed yield byte-identical bytes on any
// backend at any worker count.
type ExploreResult = explore.Result

// ExplorePoint is one evaluated design in an ExploreResult.
type ExplorePoint = explore.Point

// ExploreProgress is a point-in-time view of a running search.
type ExploreProgress = explore.Progress

// ParseSearchSpec decodes a JSON search spec (the galsim-explore -spec
// format), rejecting unknown fields so typos fail loudly.
func ParseSearchSpec(data []byte) (SearchSpec, error) {
	return explore.Parse(data)
}

// Explore runs a design-space search on the shared in-process engine and
// returns the Pareto frontier and best design. Same spec + same seed =
// byte-identical result.
func Explore(ctx context.Context, spec SearchSpec) (*ExploreResult, error) {
	return ExploreOn(ctx, LocalBackend(), spec, nil)
}

// ExploreOn runs a design-space search on the given backend — the local
// engine or a cluster coordinator — invoking fn (when non-nil) with
// progress snapshots after every generation and while one executes. The
// backend only affects speed, never the result bytes.
func ExploreOn(ctx context.Context, b Backend, spec SearchSpec, fn func(ExploreProgress)) (*ExploreResult, error) {
	x := &explore.Explorer{Evaluator: explore.BackendEvaluator{Backend: b}}
	if fn != nil {
		x.Progress = fn
	}
	return x.Run(ctx, spec)
}
