package galsim

import (
	"galsim/internal/timeline"
)

// Timeline is the microarchitecture event tracer attached to a run via
// Options.Timeline: a ring-buffered recorder of DVFS retunes, mixed-clock
// FIFO stall/backpressure windows, squash/recovery spans and structure
// occupancy transitions. Export it with WriteTrace and open the JSON at
// https://ui.perfetto.dev: one track per clock domain, one per
// cross-domain link, plus occupancy and slowdown counter tracks.
type Timeline = timeline.Recorder

// TraceSpan is one wall-clock span of a distributed sweep, as served by
// the galsim-fleet coordinator's GET /sweeps/{id}/trace endpoint.
type TraceSpan = timeline.Span

// NewTimeline builds a standalone recorder with the given event cap
// (0 selects the default) in either full or flight-recorder mode. Run
// builds one automatically from Options.Timeline; the constructor exists
// for callers driving campaign executions directly.
func NewTimeline(maxEvents int, flight bool) *Timeline {
	return timeline.NewRecorder(timeline.Options{MaxEvents: maxEvents, Flight: flight})
}

// ValidateTrace checks that data is well-formed Chrome trace-event JSON:
// parseable, timestamps monotonic per track, and every duration-end
// matched to an open begin. Both the simulator timelines and the fleet
// span traces satisfy it.
func ValidateTrace(data []byte) error { return timeline.Validate(data) }
