// Powerbreakdown: the paper's Figure 10 through the public API — where does
// the energy go in the base and GALS machines? The GALS design eliminates
// the global clock grid but pays for mixed-clock FIFOs, longer runtimes
// (more cycles of local grids and idle blocks) and extra speculative work.
package main

import (
	"fmt"
	"log"
	"sort"

	"galsim"
)

func main() {
	const bench = "compress"
	const n = 100_000

	base, err := galsim.Run(galsim.Options{Benchmark: bench, Machine: galsim.Base, Instructions: n})
	if err != nil {
		log.Fatal(err)
	}
	gals, err := galsim.Run(galsim.Options{Benchmark: bench, Machine: galsim.GALS, Instructions: n})
	if err != nil {
		log.Fatal(err)
	}

	blocks := make([]string, 0, len(base.EnergyBreakdown))
	for b := range base.EnergyBreakdown {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool {
		return base.EnergyBreakdown[blocks[i]] > base.EnergyBreakdown[blocks[j]]
	})

	total := base.EnergyJoules * 1e12 // pJ
	fmt.Printf("energy breakdown for %s, normalized to the base machine's total\n\n", bench)
	fmt.Printf("%-14s %8s %8s\n", "block", "base", "gals")
	for _, b := range blocks {
		bv := base.EnergyBreakdown[b] / total
		gv := gals.EnergyBreakdown[b] / total
		if bv == 0 && gv == 0 {
			continue
		}
		fmt.Printf("%-14s %8.3f %8.3f%s\n", b, bv, gv, marker(b, bv, gv))
	}
	fmt.Printf("%-14s %8.3f %8.3f\n", "TOTAL", 1.0, gals.EnergyJoules/base.EnergyJoules)

	fmt.Println("\npaper (Figure 10): the power gained by eliminating the global clock is")
	fmt.Println("offset by the increased consumption of the other blocks.")
}

func marker(block string, base, gals float64) string {
	switch {
	case block == "global-clock":
		return "   <- eliminated in GALS"
	case block == "fifos":
		return "   <- GALS-only cost"
	case gals > base*1.05:
		return "   (+)"
	default:
		return ""
	}
}
