// Sweep: reproduce the structure of the paper's Figure 12 — ijpeg with the
// fetch clock 10% slow, the FP clock 20% slow, and the memory clock swept
// from full speed to half speed (gals-00/10/20/50). ijpeg makes very few
// memory accesses, so the question is whether slowing the memory cluster
// is a good energy/performance tradeoff. (The paper's answer: it is not.)
//
// The whole grid — the base reference plus all four GALS points — goes
// through galsim.RunMany, so the runs execute concurrently on a worker
// pool and re-running the example re-simulates nothing that an earlier
// RunMany in the same process already computed.
package main

import (
	"context"
	"fmt"
	"log"

	"galsim"
)

func main() {
	const bench = "ijpeg"
	const n = 100_000

	cases := []struct {
		label string
		slow  float64
	}{
		{"gals-00", 1.0},
		{"gals-10", 1.1},
		{"gals-20", 1.2},
		{"gals-50", 1.5},
	}

	opts := []galsim.Options{{Benchmark: bench, Machine: galsim.Base, Instructions: n}}
	for _, c := range cases {
		opts = append(opts, galsim.Options{
			Benchmark:    bench,
			Machine:      galsim.GALS,
			Instructions: n,
			Slowdowns:    map[string]float64{"fetch": 1.1, "fp": 1.2, "mem": c.slow},
		})
	}
	results, err := galsim.RunMany(context.Background(), opts)
	if err != nil {
		log.Fatal(err)
	}
	base, galsRuns := results[0], results[1:]

	info, _ := galsim.Describe(bench)
	fmt.Printf("%s (%.0f%% memory instructions): memory-clock sweep\n\n", bench, 100*info.MemFrac)
	fmt.Printf("%-9s %10s %10s %10s %16s\n", "case", "rel-perf", "rel-energy", "rel-power", "energy/perf-loss")

	for i, c := range cases {
		gals := galsRuns[i]
		perf := base.RelativePerformance(gals)
		energy := gals.EnergyJoules / base.EnergyJoules
		tradeoff := "-"
		if perf < 1 {
			tradeoff = fmt.Sprintf("%.2f", (1-energy)/(1-perf))
		}
		fmt.Printf("%-9s %10.3f %10.3f %10.3f %16s\n",
			c.label, perf, energy, gals.PowerWatts/base.PowerWatts, tradeoff)
	}

	fmt.Println("\npaper (Figure 12): energy savings of 4-13% cost 15-25% performance —")
	fmt.Println("slowing the memory clock does not pay off for this benchmark; the tradeoff")
	fmt.Println("achievable by slowing a domain is dictated by the application's usage of it.")
}
