// DVFS: the paper's second experiment set — exploit the GALS machine's
// independently controllable clocks by slowing domains an application
// barely uses and dropping their supply voltage (Equation 1).
//
// gcc is an integer benchmark, so its floating-point cluster is nearly
// idle: this example slows the FP clock by 1.5x, 2x and 3x (the paper's
// gals-1/gals-2 cases) and the fetch clock by 10%, and reports the
// performance/energy/power tradeoff against the synchronous baseline.
package main

import (
	"fmt"
	"log"

	"galsim"
)

func main() {
	const bench = "gcc"
	const n = 100_000

	base, err := galsim.Run(galsim.Options{Benchmark: bench, Machine: galsim.Base, Instructions: n})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: slowing the mostly-idle FP cluster (fetch -10%% in all cases)\n\n", bench)
	fmt.Printf("%-10s %10s %10s %10s\n", "fp-clock", "rel-perf", "rel-energy", "rel-power")

	for _, fp := range []float64{1.0, 1.5, 2.0, 3.0} {
		gals, err := galsim.Run(galsim.Options{
			Benchmark:    bench,
			Machine:      galsim.GALS,
			Instructions: n,
			Slowdowns:    map[string]float64{"fetch": 1.1, "fp": fp},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("/%-9.1f %10.3f %10.3f %10.3f\n",
			fp,
			base.RelativePerformance(gals),
			gals.EnergyJoules/base.EnergyJoules,
			gals.PowerWatts/base.PowerWatts)
	}

	fmt.Println("\npaper (Figure 13): with the FP clock at 1/3 speed, gcc loses ~13% performance")
	fmt.Println("for ~11% energy and ~21% power savings over the fully synchronous processor.")
}
