// Dynamicdvfs: the paper's concluding direction, realized. §5.2 picks each
// benchmark's slowdowns by hand after "studying the application's
// characteristics"; the conclusion anticipates "application-driven,
// multiple-domain dynamic clock/voltage scaling". This example turns on the
// online controller — which watches each execution domain's issue-queue
// occupancy and slows domains with idle queues — and shows that it finds,
// by itself, roughly the configurations the paper chose manually (e.g. the
// FP cluster at 1/3 speed for integer codes).
package main

import (
	"fmt"
	"log"

	"galsim"
)

func main() {
	const n = 150_000

	fmt.Printf("online per-domain DVFS vs full-speed machines, %d instructions\n\n", n)
	fmt.Printf("%-10s %10s %10s %10s %9s %22s\n",
		"benchmark", "rel-perf", "rel-energy", "rel-power", "retunes", "final int/fp/mem clock")

	for _, bench := range []string{"perl", "gcc", "ijpeg", "swim", "fpppp"} {
		base, err := galsim.Run(galsim.Options{Benchmark: bench, Machine: galsim.Base, Instructions: n})
		if err != nil {
			log.Fatal(err)
		}
		dyn, err := galsim.Run(galsim.Options{
			Benchmark:    bench,
			Machine:      galsim.GALS,
			Instructions: n,
			DynamicDVFS:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.3f %10.3f %10.3f %9d %10.2f/%.2f/%.2f\n",
			bench,
			base.RelativePerformance(dyn),
			dyn.EnergyJoules/base.EnergyJoules,
			dyn.PowerWatts/base.PowerWatts,
			dyn.Retunes,
			dyn.FinalSlowdowns["int"], dyn.FinalSlowdowns["fp"], dyn.FinalSlowdowns["mem"])
	}

	fmt.Println("\nFor integer benchmarks the controller converges on a slow FP cluster —")
	fmt.Println("the configuration the paper reached by hand (Figure 13's gals-2) — while")
	fmt.Println("FP-heavy codes keep their FP clock fast. No per-application tuning involved.")
}
