// Partition: the design-space question the MachineSpec API exists to ask —
// how does the *choice of partitioning* into clock domains affect power and
// performance? The paper evaluates exactly one partitioning (its Figure
// 3(b) five-domain machine); here the same workloads run over a small
// family of user-defined machines between the two built-ins:
//
//	base       1 domain  fully synchronous reference (global clock grid)
//	frontmerge 4 domains fetch+decode share one clock, exec domains split
//	tri        3 domains front end / int+fp cluster / memory system
//	gals       5 domains the paper's machine
//
// Fewer domains mean fewer mixed-clock FIFO crossings (less slip, less
// misspeculation) but also fewer independently scalable clocks; the sweep
// quantifies that tradeoff per benchmark. Every machine here is just a
// galsim.MachineSpec value — the same JSON-shaped spec accepted by
// `galsim -machine <file.json>` and `galsimd POST /machines`.
package main

import (
	"context"
	"fmt"
	"log"

	"galsim"
)

// frontMerge keeps the execution domains of the paper's machine but fuses
// fetch and decode onto one front-end clock: one fewer synchronizer on the
// machine's critical fetch->decode path.
func frontMerge() galsim.MachineSpec {
	return galsim.MachineSpec{
		Name: "frontmerge",
		Domains: []galsim.ClockDomainSpec{
			{Name: "front"},
			{Name: "int", DVFS: "dynamic"},
			{Name: "fp", DVFS: "dynamic"},
			{Name: "mem", DVFS: "dynamic"},
		},
		Assign: map[string]string{
			"fetch": "front", "decode": "front",
			"int": "int", "fp": "fp", "mem": "mem",
		},
	}
}

// tri additionally fuses the integer and FP clusters onto one execution
// clock: only the memory system keeps a private clock.
func tri() galsim.MachineSpec {
	return galsim.MachineSpec{
		Name: "tri",
		Domains: []galsim.ClockDomainSpec{
			{Name: "front"},
			{Name: "exec", DVFS: "dynamic"},
			{Name: "memsys"},
		},
		Assign: map[string]string{
			"fetch": "front", "decode": "front",
			"int": "exec", "fp": "exec", "mem": "memsys",
		},
	}
}

func main() {
	const n = 100_000
	benchmarks := []string{"gcc", "swim", "perl"}

	fm, tr := frontMerge(), tri()
	machines := []struct {
		label string
		opt   func(galsim.Options) galsim.Options
	}{
		{"frontmerge", func(o galsim.Options) galsim.Options { o.MachineSpec = &fm; return o }},
		{"tri", func(o galsim.Options) galsim.Options { o.MachineSpec = &tr; return o }},
		{"gals", func(o galsim.Options) galsim.Options { o.Machine = galsim.GALS; return o }},
	}

	var opts []galsim.Options
	for _, b := range benchmarks {
		opts = append(opts, galsim.Options{Benchmark: b, Machine: galsim.Base, Instructions: n})
		for _, m := range machines {
			opts = append(opts, m.opt(galsim.Options{Benchmark: b, Instructions: n}))
		}
	}
	results, err := galsim.RunMany(context.Background(), opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("partitioning sweep, %d instructions (relative to the synchronous base)\n\n", n)
	fmt.Printf("%-6s %-11s %8s %9s %10s %9s %10s\n",
		"bench", "machine", "domains", "rel-perf", "rel-energy", "rel-power", "slip-ns")
	row := 0
	for _, b := range benchmarks {
		base := results[row]
		row++
		fmt.Printf("%-6s %-11s %8d %9.3f %10.3f %9.3f %10.2f\n",
			b, "base", 1, 1.0, 1.0, 1.0, base.AvgSlipNs)
		domains := []int{4, 3, 5}
		for i, m := range machines {
			r := results[row]
			row++
			fmt.Printf("%-6s %-11s %8d %9.3f %10.3f %9.3f %10.2f\n",
				b, m.label, domains[i],
				base.RelativePerformance(r),
				r.EnergyJoules/base.EnergyJoules,
				r.PowerWatts/base.PowerWatts,
				r.AvgSlipNs)
		}
	}
	fmt.Println("\nreading: the boundaries that cost performance are the ones real traffic")
	fmt.Println("crosses — fusing fetch+decode removes a synchronizer from every fetched")
	fmt.Println("instruction's path and buys back most of the GALS penalty. Fusing int+fp")
	fmt.Println("on top of it (tri) is free at equal clocks: no machine link joins the two")
	fmt.Println("clusters directly, so with every domain at 1 GHz the merge shifts only")
	fmt.Println("internal waiting, not results — what it gives up is the freedom to scale")
	fmt.Println("int and fp independently (fp=3 on gals has no tri equivalent).")
}
