// Linkstyles: quantify the paper's §3.2 design argument. Two asynchronous
// communication mechanisms were on the table for GALS systems: stretchable
// clocks (an arbiter pauses both clocks for each handshake) and mixed-clock
// FIFOs (Chelcea & Nowick). The paper chose FIFOs because "transactions
// occur practically during every cycle — stretching the clock every cycle
// would lead to a situation where the effective clock frequency is
// determined not by the clock generator but by the rate of communication."
// This example runs the same machine with both mechanisms and shows the gap.
package main

import (
	"fmt"
	"log"

	"galsim"
)

func main() {
	const bench = "compress"
	const n = 100_000

	base, err := galsim.Run(galsim.Options{Benchmark: bench, Machine: galsim.Base, Instructions: n})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s, %d instructions — GALS communication mechanism comparison\n\n", bench, n)
	fmt.Printf("%-28s %10s %8s %10s\n", "machine", "rel-perf", "ipc", "slip(ns)")
	fmt.Printf("%-28s %10.3f %8.2f %10.1f\n", "base (synchronous)", 1.0, base.IPC, base.AvgSlipNs)

	for _, style := range []struct{ name, opt string }{
		{"gals (mixed-clock FIFOs)", "fifo"},
		{"gals (stretchable clocks)", "stretch"},
	} {
		r, err := galsim.Run(galsim.Options{
			Benchmark:    bench,
			Machine:      galsim.GALS,
			Instructions: n,
			LinkStyle:    style.opt,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %10.3f %8.2f %10.1f\n",
			style.name, base.RelativePerformance(r), r.IPC, r.AvgSlipNs)
	}

	fmt.Println("\npaper §3.2: in a processor pipeline, transactions occur practically every")
	fmt.Println("cycle; a stretchable-clock interface serializes them, so the effective clock")
	fmt.Println("frequency becomes the handshake rate. The FIFO interface keeps streaming")
	fmt.Println("throughput and pays only latency — which is why the paper adopted it.")
}
