// Quickstart: compare the fully synchronous processor against the
// 5-clock-domain GALS processor on one benchmark — the paper's headline
// experiment in a dozen lines.
package main

import (
	"fmt"
	"log"

	"galsim"
)

func main() {
	const bench = "gcc"
	const n = 100_000

	base, err := galsim.Run(galsim.Options{Benchmark: bench, Machine: galsim.Base, Instructions: n})
	if err != nil {
		log.Fatal(err)
	}
	gals, err := galsim.Run(galsim.Options{Benchmark: bench, Machine: galsim.GALS, Instructions: n})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s, %d instructions\n\n", bench, n)
	fmt.Printf("%-22s %12s %12s\n", "", "base", "gals")
	fmt.Printf("%-22s %11.1fus %11.1fus\n", "runtime", base.SimSeconds*1e6, gals.SimSeconds*1e6)
	fmt.Printf("%-22s %12.2f %12.2f\n", "IPC", base.IPC, gals.IPC)
	fmt.Printf("%-22s %11.1fns %11.1fns\n", "avg slip", base.AvgSlipNs, gals.AvgSlipNs)
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "wrong-path fetched",
		100*base.MisspeculationFrac, 100*gals.MisspeculationFrac)
	fmt.Printf("%-22s %11.2fW %11.2fW\n", "average power", base.PowerWatts, gals.PowerWatts)
	fmt.Printf("%-22s %11.3fmJ %11.3fmJ\n", "total energy", base.EnergyJoules*1e3, gals.EnergyJoules*1e3)

	fmt.Printf("\nGALS relative performance: %.3f (paper: 0.85-0.95)\n", base.RelativePerformance(gals))
	fmt.Printf("GALS relative energy:      %.3f (paper: ~1.01 — no free lunch from removing the global clock)\n",
		gals.EnergyJoules/base.EnergyJoules)
}
