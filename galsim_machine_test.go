package galsim

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// triSpec is a user-authored 3-domain machine: merged front end, merged
// int+fp execution cluster, memory system on its own clock.
func triSpec() MachineSpec {
	return MachineSpec{
		Name: "tri",
		Domains: []ClockDomainSpec{
			{Name: "front"},
			{Name: "exec", DVFS: "dynamic"},
			{Name: "memsys"},
		},
		Assign: map[string]string{
			"fetch": "front", "decode": "front",
			"int": "exec", "fp": "exec",
			"mem": "memsys",
		},
	}
}

func TestMachineSpecRun(t *testing.T) {
	spec := triSpec()
	r, err := Run(Options{Benchmark: "gcc", MachineSpec: &spec, Instructions: 6_000,
		Slowdowns: map[string]float64{"exec": 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Machine != "tri" || r.Committed != 6_000 {
		t.Fatalf("result = %s/%d", r.Machine, r.Committed)
	}
	if r.FinalSlowdowns["int"] != 1.5 || r.FinalSlowdowns["fp"] != 1.5 {
		t.Errorf("exec slowdown not applied to both merged structures: %v", r.FinalSlowdowns)
	}
	if r.FinalSlowdowns["fetch"] != 1 || r.FinalSlowdowns["mem"] != 1 {
		t.Errorf("slowdown leaked outside the exec domain: %v", r.FinalSlowdowns)
	}

	// Determinism: a second run reproduces the first.
	r2, err := Run(Options{Benchmark: "gcc", MachineSpec: &spec, Instructions: 6_000,
		Slowdowns: map[string]float64{"exec": 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	if r.SimSeconds != r2.SimSeconds || r.EnergyJoules != r2.EnergyJoules {
		t.Error("3-domain machine runs are not deterministic")
	}
}

func TestMachineSpecRunManyCacheHit(t *testing.T) {
	// Two distinct copies of the same machine share one cache identity.
	a, b := triSpec(), triSpec()
	opts := []Options{
		{Benchmark: "swim", MachineSpec: &a, Instructions: 4_000},
		{Benchmark: "swim", MachineSpec: &b, Instructions: 4_000},
	}
	results, err := RunMany(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].SimSeconds != results[1].SimSeconds {
		t.Error("equal machine specs produced different results")
	}
}

func TestUnknownMachineError(t *testing.T) {
	err := Options{Benchmark: "gcc", Machine: "warp9"}.Validate()
	var unknown UnknownMachineError
	if !errors.As(err, &unknown) || unknown.Name != "warp9" {
		t.Fatalf("Validate error = %#v, want UnknownMachineError", err)
	}
	for _, name := range Machines() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list built-in %q", err, name)
		}
	}
	spec := triSpec()
	err = Options{Benchmark: "gcc", Machine: GALS, MachineSpec: &spec}.Validate()
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("both-set error = %v", err)
	}
}

func TestBuiltinMachineMatchesNamedRun(t *testing.T) {
	spec, err := BuiltinMachine("gals")
	if err != nil {
		t.Fatal(err)
	}
	byName, err := Run(Options{Benchmark: "gcc", Machine: GALS, Instructions: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	bySpec, err := Run(Options{Benchmark: "gcc", MachineSpec: &spec, Instructions: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if byName.SimSeconds != bySpec.SimSeconds || byName.EnergyJoules != bySpec.EnergyJoules ||
		byName.IPC != bySpec.IPC || byName.AvgSlipNs != bySpec.AvgSlipNs {
		t.Error("built-in spec run differs from the named gals run")
	}
	if bySpec.Machine != GALS {
		t.Errorf("machine label = %q, want %q", bySpec.Machine, GALS)
	}
}

func TestParseMachineSpec(t *testing.T) {
	data := []byte(`{
	  "name": "duo",
	  "domains": [{"name": "front"}, {"name": "back", "freq_ghz": 0.8}],
	  "assign": {"fetch": "front", "decode": "front", "int": "back", "fp": "back", "mem": "back"},
	  "links": {"dispatch": {"depth": 8, "sync_edges": 3}}
	}`)
	spec, err := ParseMachineSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Domains) != 2 || spec.Domains[1].FreqGHz != 0.8 {
		t.Fatalf("parsed spec = %+v", spec)
	}
	if _, err := Run(Options{Benchmark: "compress", MachineSpec: &spec, Instructions: 4_000}); err != nil {
		t.Fatalf("parsed machine does not run: %v", err)
	}
	if _, err := ParseMachineSpec([]byte(`{"name":"x","domains":[{"name":"a","warp":1}]}`)); err == nil {
		t.Error("unknown field accepted")
	}
}
